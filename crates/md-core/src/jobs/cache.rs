//! The artifact cache: prepared inputs keyed by spec hash.
//!
//! Repeated variants of one scenario (and repeated submissions of one
//! scenario) rebuild the same inputs over and over: the perturbed lattice,
//! the packed parameter tables, the neighbor-list capacity the system
//! settles at. All of these are deterministic functions of the spec, so the
//! engine caches them under an [`ArtifactKey`] — a 64-bit FNV-1a hash of
//! the spec fields that *define* the artifact — and hands out shared
//! [`Arc`] clones. Because every cached value is the output of a
//! deterministic builder, a cache hit is bit-identical to a rebuild; the
//! bitwise-equivalence suite in `tests/job_engine.rs` holds the engine to
//! that.
//!
//! The map is keyed by `(ArtifactKey, TypeId)` so two artifact families may
//! share a key prefix without aliasing: a lattice and a capacity hint for
//! the same system never collide even if a caller hashes the same fields.

use crate::runtime::lock_recover;
use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A 64-bit content hash identifying one cached artifact.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArtifactKey(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

impl ArtifactKey {
    /// Hash raw bytes (FNV-1a).
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut h = FNV_OFFSET;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        ArtifactKey(h)
    }

    /// Hash a sequence of string parts with separators, so `["ab", "c"]`
    /// and `["a", "bc"]` hash differently.
    pub fn of(parts: &[&str]) -> Self {
        let mut key = ArtifactKey(FNV_OFFSET);
        for part in parts {
            key = key.and(part);
        }
        key
    }

    /// Extend the key with one more part (order-sensitive).
    pub fn and(self, part: &str) -> Self {
        let mut h = self.0;
        for &b in part.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        // Separator byte: keeps part boundaries in the digest.
        h ^= 0x1f;
        h = h.wrapping_mul(FNV_PRIME);
        ArtifactKey(h)
    }

    /// The raw 64-bit digest.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Hit/miss/entry counters, reported in `ScenarioReport` JSON,
/// `BENCH_throughput.json` and `tersoff-serve`'s `/metrics`, so cache
/// effectiveness is a gated, visible metric.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Live entries.
    pub entries: usize,
    /// Lookups that found a prepared artifact.
    pub hits: u64,
    /// Lookups that had to build (or found nothing).
    pub misses: u64,
    /// Entries shed by the LRU budget so far.
    pub evictions: u64,
    /// Approximate bytes held by live entries (as declared at insertion —
    /// `size_of::<T>()` unless the caller measured deeper).
    pub resident_bytes: usize,
}

/// The retention budget of an [`ArtifactCache`]: evict least-recently-used
/// entries once *either* bound is exceeded. The default is effectively
/// unbounded — the right call for a one-shot batch, where the cache dies
/// with the invocation. A long-running server passes real bounds
/// ([`ArtifactCache::with_budget`]) so the cache cannot become a leak.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CacheBudget {
    /// Maximum live entries (min 1).
    pub max_entries: usize,
    /// Maximum approximate resident bytes.
    pub max_bytes: usize,
}

impl Default for CacheBudget {
    fn default() -> Self {
        CacheBudget {
            max_entries: usize::MAX,
            max_bytes: usize::MAX,
        }
    }
}

struct Entry {
    value: Arc<dyn Any + Send + Sync>,
    bytes: usize,
    last_used: u64,
}

#[derive(Default)]
struct CacheState {
    entries: HashMap<(ArtifactKey, TypeId), Entry>,
    tick: u64,
    resident_bytes: usize,
    evictions: u64,
}

impl CacheState {
    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Shed least-recently-used entries until within budget, never
    /// touching `keep` (the entry the caller just inserted or returned).
    fn enforce(&mut self, budget: &CacheBudget, keep: (ArtifactKey, TypeId)) {
        while self.entries.len() > budget.max_entries || self.resident_bytes > budget.max_bytes {
            let victim = self
                .entries
                .iter()
                .filter(|(k, _)| **k != keep)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            let Some(victim) = victim else {
                break; // only `keep` is left — an oversized single entry stays
            };
            if let Some(gone) = self.entries.remove(&victim) {
                self.resident_bytes -= gone.bytes;
                self.evictions += 1;
            }
        }
    }
}

/// A concurrent, type-heterogeneous artifact store.
///
/// [`ArtifactCache::get_or_insert_with`] holds the map lock across the
/// build closure, so each artifact is built exactly once no matter how many
/// jobs race for it — the right trade for artifacts that are expensive to
/// build and cheap to hold (a lattice, a parameter table). Retention is
/// governed by a [`CacheBudget`]: unbounded by default (a batch cache dies
/// with its invocation), LRU-evicting under the entry/byte bounds a
/// long-running server configures.
#[derive(Default)]
pub struct ArtifactCache {
    state: Mutex<CacheState>,
    budget: CacheBudget,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ArtifactCache {
    /// An empty, effectively unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache that LRU-evicts beyond `budget`.
    pub fn with_budget(budget: CacheBudget) -> Self {
        ArtifactCache {
            budget: CacheBudget {
                max_entries: budget.max_entries.max(1),
                max_bytes: budget.max_bytes,
            },
            ..Self::default()
        }
    }

    /// The configured retention budget.
    pub fn budget(&self) -> CacheBudget {
        self.budget
    }

    /// The artifact under `key`, building (and caching) it on first use.
    /// Accounted at `size_of::<T>()`; use
    /// [`ArtifactCache::get_or_insert_measured`] when the artifact owns
    /// significant heap memory.
    pub fn get_or_insert_with<T, F>(&self, key: ArtifactKey, build: F) -> Arc<T>
    where
        T: Send + Sync + 'static,
        F: FnOnce() -> T,
    {
        self.get_or_insert_measured(key, build, |_| std::mem::size_of::<T>())
    }

    /// [`ArtifactCache::get_or_insert_with`] with an explicit size
    /// estimate: `measure` sees the freshly built value and returns the
    /// approximate bytes it holds, which is what the byte budget and the
    /// `resident_bytes` counter account.
    pub fn get_or_insert_measured<T, F, M>(&self, key: ArtifactKey, build: F, measure: M) -> Arc<T>
    where
        T: Send + Sync + 'static,
        F: FnOnce() -> T,
        M: FnOnce(&T) -> usize,
    {
        let full_key = (key, TypeId::of::<T>());
        let mut state = lock_recover(&self.state);
        let tick = state.next_tick();
        if let Some(found) = state.entries.get_mut(&full_key) {
            found.last_used = tick;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return found
                .value
                .clone()
                .downcast::<T>()
                .expect("cache entry type is pinned by its TypeId key");
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(build());
        let bytes = measure(&built);
        state.entries.insert(
            full_key,
            Entry {
                value: built.clone(),
                bytes,
                last_used: tick,
            },
        );
        state.resident_bytes += bytes;
        state.enforce(&self.budget, full_key);
        built
    }

    /// Look up without building. Counts as a hit or a miss.
    pub fn get<T: Send + Sync + 'static>(&self, key: ArtifactKey) -> Option<Arc<T>> {
        let mut state = lock_recover(&self.state);
        let tick = state.next_tick();
        match state.entries.get_mut(&(key, TypeId::of::<T>())) {
            Some(found) => {
                found.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(
                    found
                        .value
                        .clone()
                        .downcast::<T>()
                        .expect("cache entry type is pinned by its TypeId key"),
                )
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert or overwrite (for artifacts that evolve, like capacity
    /// hints). Does not touch the hit/miss counters. Accounted at
    /// `size_of::<T>()`; see [`ArtifactCache::put_measured`].
    pub fn put<T: Send + Sync + 'static>(&self, key: ArtifactKey, value: T) -> Arc<T> {
        let bytes = std::mem::size_of::<T>();
        self.put_measured(key, value, bytes)
    }

    /// [`ArtifactCache::put`] with an explicit byte estimate.
    pub fn put_measured<T: Send + Sync + 'static>(
        &self,
        key: ArtifactKey,
        value: T,
        bytes: usize,
    ) -> Arc<T> {
        let full_key = (key, TypeId::of::<T>());
        let stored = Arc::new(value);
        let mut state = lock_recover(&self.state);
        let tick = state.next_tick();
        if let Some(old) = state.entries.insert(
            full_key,
            Entry {
                value: stored.clone(),
                bytes,
                last_used: tick,
            },
        ) {
            state.resident_bytes -= old.bytes;
        }
        state.resident_bytes += bytes;
        state.enforce(&self.budget, full_key);
        stored
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        let state = lock_recover(&self.state);
        CacheStats {
            entries: state.entries.len(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: state.evictions,
            resident_bytes: state.resident_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_once_then_hits() {
        let cache = ArtifactCache::new();
        let key = ArtifactKey::of(&["lattice", "silicon", "4x4x4"]);
        let mut builds = 0;
        for _ in 0..3 {
            let v = cache.get_or_insert_with(key, || {
                builds += 1;
                vec![1.0f64, 2.0, 3.0]
            });
            assert_eq!(v.len(), 3);
        }
        assert_eq!(builds, 1);
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.hits, stats.misses), (1, 2, 1));
    }

    #[test]
    fn same_key_different_types_do_not_alias() {
        let cache = ArtifactCache::new();
        let key = ArtifactKey::of(&["system"]);
        cache.put(key, 42u64);
        cache.put(key, "hint".to_string());
        assert_eq!(*cache.get::<u64>(key).unwrap(), 42);
        assert_eq!(*cache.get::<String>(key).unwrap(), "hint");
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn put_overwrites() {
        let cache = ArtifactCache::new();
        let key = ArtifactKey::of(&["capacity"]);
        cache.put(key, 100usize);
        cache.put(key, 250usize);
        assert_eq!(*cache.get::<usize>(key).unwrap(), 250);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn entry_budget_evicts_least_recently_used() {
        let cache = ArtifactCache::with_budget(CacheBudget {
            max_entries: 2,
            max_bytes: usize::MAX,
        });
        let (a, b, c) = (
            ArtifactKey::of(&["a"]),
            ArtifactKey::of(&["b"]),
            ArtifactKey::of(&["c"]),
        );
        cache.put(a, 1u32);
        cache.put(b, 2u32);
        // Touch `a` so `b` is the LRU victim when `c` arrives.
        assert_eq!(*cache.get::<u32>(a).unwrap(), 1);
        cache.put(c, 3u32);
        assert!(cache.get::<u32>(b).is_none(), "LRU entry must be evicted");
        assert_eq!(*cache.get::<u32>(a).unwrap(), 1);
        assert_eq!(*cache.get::<u32>(c).unwrap(), 3);
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.evictions), (2, 1));
    }

    #[test]
    fn byte_budget_accounts_measured_sizes() {
        let cache = ArtifactCache::with_budget(CacheBudget {
            max_entries: usize::MAX,
            max_bytes: 1000,
        });
        let big = ArtifactKey::of(&["big"]);
        let small = ArtifactKey::of(&["small"]);
        cache.get_or_insert_measured(big, || vec![0u8; 600], |v| v.len());
        cache.get_or_insert_measured(small, || vec![0u8; 300], |v| v.len());
        assert_eq!(cache.stats().resident_bytes, 900);
        // A third entry pushes past 1000 bytes: `big` (LRU) goes.
        cache.get_or_insert_measured(ArtifactKey::of(&["next"]), || vec![0u8; 300], |v| v.len());
        let stats = cache.stats();
        assert_eq!(stats.resident_bytes, 600);
        assert_eq!(stats.evictions, 1);
        assert!(cache.get::<Vec<u8>>(big).is_none());
        assert!(cache.get::<Vec<u8>>(small).is_some());
    }

    #[test]
    fn an_oversized_entry_survives_alone() {
        // The just-inserted artifact is never its own victim: a single
        // entry larger than the whole byte budget stays resident (the
        // caller needs it regardless) and only neighbors are shed.
        let cache = ArtifactCache::with_budget(CacheBudget {
            max_entries: 8,
            max_bytes: 100,
        });
        let key = ArtifactKey::of(&["huge"]);
        let v = cache.get_or_insert_measured(key, || vec![0u8; 500], |v| v.len());
        assert_eq!(v.len(), 500);
        assert_eq!(cache.stats().entries, 1);
        assert!(cache.get::<Vec<u8>>(key).is_some());
    }

    #[test]
    fn put_overwrite_rebalances_resident_bytes() {
        let cache = ArtifactCache::new();
        let key = ArtifactKey::of(&["hint"]);
        cache.put_measured(key, vec![0u8; 100], 100);
        cache.put_measured(key, vec![0u8; 40], 40);
        let stats = cache.stats();
        assert_eq!(stats.resident_bytes, 40);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn key_parts_are_boundary_sensitive() {
        assert_ne!(ArtifactKey::of(&["ab", "c"]), ArtifactKey::of(&["a", "bc"]));
        assert_eq!(
            ArtifactKey::of(&["a", "b"]),
            ArtifactKey::of(&["a"]).and("b")
        );
        assert_ne!(ArtifactKey::from_bytes(b"x"), ArtifactKey::from_bytes(b"y"));
    }
}
