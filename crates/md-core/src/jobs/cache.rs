//! The artifact cache: prepared inputs keyed by spec hash.
//!
//! Repeated variants of one scenario (and repeated submissions of one
//! scenario) rebuild the same inputs over and over: the perturbed lattice,
//! the packed parameter tables, the neighbor-list capacity the system
//! settles at. All of these are deterministic functions of the spec, so the
//! engine caches them under an [`ArtifactKey`] — a 64-bit FNV-1a hash of
//! the spec fields that *define* the artifact — and hands out shared
//! [`Arc`] clones. Because every cached value is the output of a
//! deterministic builder, a cache hit is bit-identical to a rebuild; the
//! bitwise-equivalence suite in `tests/job_engine.rs` holds the engine to
//! that.
//!
//! The map is keyed by `(ArtifactKey, TypeId)` so two artifact families may
//! share a key prefix without aliasing: a lattice and a capacity hint for
//! the same system never collide even if a caller hashes the same fields.

use crate::runtime::lock_recover;
use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A 64-bit content hash identifying one cached artifact.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArtifactKey(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

impl ArtifactKey {
    /// Hash raw bytes (FNV-1a).
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut h = FNV_OFFSET;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        ArtifactKey(h)
    }

    /// Hash a sequence of string parts with separators, so `["ab", "c"]`
    /// and `["a", "bc"]` hash differently.
    pub fn of(parts: &[&str]) -> Self {
        let mut key = ArtifactKey(FNV_OFFSET);
        for part in parts {
            key = key.and(part);
        }
        key
    }

    /// Extend the key with one more part (order-sensitive).
    pub fn and(self, part: &str) -> Self {
        let mut h = self.0;
        for &b in part.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        // Separator byte: keeps part boundaries in the digest.
        h ^= 0x1f;
        h = h.wrapping_mul(FNV_PRIME);
        ArtifactKey(h)
    }

    /// The raw 64-bit digest.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Hit/miss/entry counters, reported in `ScenarioReport` JSON and
/// `BENCH_throughput.json` so cache effectiveness is a gated, visible metric.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Live entries.
    pub entries: usize,
    /// Lookups that found a prepared artifact.
    pub hits: u64,
    /// Lookups that had to build (or found nothing).
    pub misses: u64,
}

/// A concurrent, type-heterogeneous artifact store.
///
/// [`ArtifactCache::get_or_insert_with`] holds the map lock across the
/// build closure, so each artifact is built exactly once no matter how many
/// jobs race for it — the right trade for artifacts that are expensive to
/// build and cheap to hold (a lattice, a parameter table). The cache never
/// evicts; its lifetime is the engine's.
#[derive(Default)]
pub struct ArtifactCache {
    entries: Mutex<HashMap<(ArtifactKey, TypeId), Arc<dyn Any + Send + Sync>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ArtifactCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The artifact under `key`, building (and caching) it on first use.
    pub fn get_or_insert_with<T, F>(&self, key: ArtifactKey, build: F) -> Arc<T>
    where
        T: Send + Sync + 'static,
        F: FnOnce() -> T,
    {
        let mut entries = lock_recover(&self.entries);
        match entries.get(&(key, TypeId::of::<T>())) {
            Some(found) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                found
                    .clone()
                    .downcast::<T>()
                    .expect("cache entry type is pinned by its TypeId key")
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let built = Arc::new(build());
                entries.insert((key, TypeId::of::<T>()), built.clone());
                built
            }
        }
    }

    /// Look up without building. Counts as a hit or a miss.
    pub fn get<T: Send + Sync + 'static>(&self, key: ArtifactKey) -> Option<Arc<T>> {
        let entries = lock_recover(&self.entries);
        match entries.get(&(key, TypeId::of::<T>())) {
            Some(found) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(
                    found
                        .clone()
                        .downcast::<T>()
                        .expect("cache entry type is pinned by its TypeId key"),
                )
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert or overwrite (for artifacts that evolve, like capacity
    /// hints). Does not touch the hit/miss counters.
    pub fn put<T: Send + Sync + 'static>(&self, key: ArtifactKey, value: T) -> Arc<T> {
        let stored = Arc::new(value);
        lock_recover(&self.entries).insert((key, TypeId::of::<T>()), stored.clone());
        stored
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: lock_recover(&self.entries).len(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_once_then_hits() {
        let cache = ArtifactCache::new();
        let key = ArtifactKey::of(&["lattice", "silicon", "4x4x4"]);
        let mut builds = 0;
        for _ in 0..3 {
            let v = cache.get_or_insert_with(key, || {
                builds += 1;
                vec![1.0f64, 2.0, 3.0]
            });
            assert_eq!(v.len(), 3);
        }
        assert_eq!(builds, 1);
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.hits, stats.misses), (1, 2, 1));
    }

    #[test]
    fn same_key_different_types_do_not_alias() {
        let cache = ArtifactCache::new();
        let key = ArtifactKey::of(&["system"]);
        cache.put(key, 42u64);
        cache.put(key, "hint".to_string());
        assert_eq!(*cache.get::<u64>(key).unwrap(), 42);
        assert_eq!(*cache.get::<String>(key).unwrap(), "hint");
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn put_overwrites() {
        let cache = ArtifactCache::new();
        let key = ArtifactKey::of(&["capacity"]);
        cache.put(key, 100usize);
        cache.put(key, 250usize);
        assert_eq!(*cache.get::<usize>(key).unwrap(), 250);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn key_parts_are_boundary_sensitive() {
        assert_ne!(ArtifactKey::of(&["ab", "c"]), ArtifactKey::of(&["a", "bc"]));
        assert_eq!(
            ArtifactKey::of(&["a", "b"]),
            ArtifactKey::of(&["a"]).and("b")
        );
        assert_ne!(ArtifactKey::from_bytes(b"x"), ArtifactKey::from_bytes(b"y"));
    }
}
