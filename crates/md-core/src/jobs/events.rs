//! The job-event stream: what the engine tells the outside world.
//!
//! Every lifecycle transition of a job — and, through
//! [`JobContext::emit_thermo`](super::engine::JobContext::emit_thermo) /
//! [`emit_checkpoint`](super::engine::JobContext::emit_checkpoint), the
//! in-run observer callbacks a job chooses to forward — is published as a
//! [`JobEvent`] on the engine's [`EventBus`]. Subscribers get an ordinary
//! [`std::sync::mpsc::Receiver`]; a dropped receiver is pruned on the next
//! emit, so an abandoned subscription never wedges the engine.
//!
//! Ordering guarantee: events *of one job* arrive in lifecycle order
//! (`Queued` before `Started` before in-run events before the terminal
//! `Finished`/`Faulted`/`Cancelled`). Events of different jobs interleave
//! arbitrarily — they come from concurrent lanes.

use crate::runtime::lock_recover;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Mutex;

/// Engine-unique job identifier, assigned at submission.
pub type JobId = u64;

/// One published engine event. Terminal events (`Finished`, `Faulted`,
/// `Cancelled`) carry the job name so log-style subscribers need no lookup
/// table; high-rate in-run events (`Thermo`, `Checkpoint`) carry only the id.
#[derive(Clone, Debug, PartialEq)]
pub enum JobEvent {
    /// The job was accepted into the queue.
    Queued {
        /// The submitted job.
        job: JobId,
        /// The job's display name.
        name: String,
    },
    /// A lane popped the job and leased it a runtime.
    Started {
        /// The running job.
        job: JobId,
        /// The job's display name.
        name: String,
        /// Resolved thread count of the leased runtime.
        threads: usize,
        /// Whether the job claimed the runtime exclusively.
        exclusive: bool,
    },
    /// A thermo sample the job chose to stream (see
    /// [`JobContext::emit_thermo`](super::engine::JobContext::emit_thermo)).
    Thermo {
        /// The running job.
        job: JobId,
        /// Step index of the sample.
        step: u64,
        /// Total energy (eV).
        total_energy: f64,
        /// Instantaneous temperature (K).
        temperature: f64,
    },
    /// The job wrote a checkpoint.
    Checkpoint {
        /// The running job.
        job: JobId,
        /// Step index of the checkpoint.
        step: u64,
    },
    /// The job's closure returned normally.
    Finished {
        /// The finished job.
        job: JobId,
        /// The job's display name.
        name: String,
        /// Wall-clock seconds between `Started` and completion.
        seconds: f64,
    },
    /// A panic unwound out of the job's closure (the lease's runtime
    /// self-heals; the engine keeps draining).
    Faulted {
        /// The faulted job.
        job: JobId,
        /// The job's display name.
        name: String,
        /// Stringified panic payload.
        message: String,
    },
    /// The job was cancelled while still queued and will never run.
    Cancelled {
        /// The cancelled job.
        job: JobId,
        /// The job's display name.
        name: String,
    },
}

impl JobEvent {
    /// The id of the job the event belongs to.
    pub fn job(&self) -> JobId {
        match self {
            JobEvent::Queued { job, .. }
            | JobEvent::Started { job, .. }
            | JobEvent::Thermo { job, .. }
            | JobEvent::Checkpoint { job, .. }
            | JobEvent::Finished { job, .. }
            | JobEvent::Faulted { job, .. }
            | JobEvent::Cancelled { job, .. } => *job,
        }
    }

    /// Stable lower-case event-kind name (for logs and tests).
    pub fn kind(&self) -> &'static str {
        match self {
            JobEvent::Queued { .. } => "queued",
            JobEvent::Started { .. } => "started",
            JobEvent::Thermo { .. } => "thermo",
            JobEvent::Checkpoint { .. } => "checkpoint",
            JobEvent::Finished { .. } => "finished",
            JobEvent::Faulted { .. } => "faulted",
            JobEvent::Cancelled { .. } => "cancelled",
        }
    }
}

/// A multi-subscriber broadcast channel for [`JobEvent`]s.
///
/// Emission is best-effort fan-out: every live subscriber receives a clone
/// of every event emitted after its [`EventBus::subscribe`] call;
/// subscribers whose receiver was dropped are pruned. With no subscribers,
/// `emit` is a cheap no-op (one short lock), so instrumentation costs
/// nothing unless someone listens.
#[derive(Default)]
pub struct EventBus {
    subscribers: Mutex<Vec<Sender<JobEvent>>>,
}

impl EventBus {
    /// A bus with no subscribers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a new subscription; events emitted from now on are delivered.
    pub fn subscribe(&self) -> Receiver<JobEvent> {
        let (tx, rx) = channel();
        lock_recover(&self.subscribers).push(tx);
        rx
    }

    /// Broadcast one event to every live subscriber.
    pub fn emit(&self, event: JobEvent) {
        let mut subs = lock_recover(&self.subscribers);
        subs.retain(|tx| tx.send(event.clone()).is_ok());
    }

    /// Number of live subscriptions (dropped receivers still count until
    /// the next `emit` prunes them).
    pub fn subscriber_count(&self) -> usize {
        lock_recover(&self.subscribers).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fan_out_to_every_subscriber() {
        let bus = EventBus::new();
        let a = bus.subscribe();
        let b = bus.subscribe();
        bus.emit(JobEvent::Queued {
            job: 7,
            name: "x".into(),
        });
        for rx in [&a, &b] {
            let ev = rx.try_recv().unwrap();
            assert_eq!(ev.job(), 7);
            assert_eq!(ev.kind(), "queued");
        }
    }

    #[test]
    fn dropped_subscribers_are_pruned_on_emit() {
        let bus = EventBus::new();
        let keep = bus.subscribe();
        drop(bus.subscribe());
        assert_eq!(bus.subscriber_count(), 2);
        bus.emit(JobEvent::Checkpoint { job: 1, step: 10 });
        assert_eq!(bus.subscriber_count(), 1);
        assert_eq!(keep.try_recv().unwrap().kind(), "checkpoint");
    }

    #[test]
    fn subscription_only_sees_later_events() {
        let bus = EventBus::new();
        bus.emit(JobEvent::Queued {
            job: 1,
            name: "early".into(),
        });
        let rx = bus.subscribe();
        bus.emit(JobEvent::Finished {
            job: 1,
            name: "early".into(),
            seconds: 0.5,
        });
        assert_eq!(rx.try_recv().unwrap().kind(), "finished");
        assert!(rx.try_recv().is_err());
    }
}
