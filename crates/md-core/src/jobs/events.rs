//! The job-event stream: what the engine tells the outside world.
//!
//! Every lifecycle transition of a job — and, through
//! [`JobContext::emit_thermo`](super::engine::JobContext::emit_thermo) /
//! [`emit_checkpoint`](super::engine::JobContext::emit_checkpoint), the
//! in-run observer callbacks a job chooses to forward — is published as a
//! [`JobEvent`] on the engine's [`EventBus`]. Subscribers get an
//! [`EventSub`]: a **bounded** ring buffer with drop-oldest overflow, so a
//! subscriber that stops draining (a stalled HTTP streaming client, an
//! abandoned test receiver) can buffer at most its capacity of events and
//! can never block emission — and therefore never blocks job progress.
//! Overflow is counted per subscriber ([`EventSub::lagged`]); a dropped
//! subscription is pruned on the next emit.
//!
//! Ordering guarantee: events *of one job* arrive in lifecycle order
//! (`Queued` before `Started` before in-run events before the terminal
//! `Finished`/`Faulted`/`Cancelled`). Events of different jobs interleave
//! arbitrarily — they come from concurrent lanes. Drop-oldest overflow can
//! lose a lagging subscriber's *oldest* events but never reorders the
//! survivors.

use crate::runtime::{lock_recover, wait_recover};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Engine-unique job identifier, assigned at submission.
pub type JobId = u64;

/// One published engine event. Terminal events (`Finished`, `Faulted`,
/// `Cancelled`) carry the job name so log-style subscribers need no lookup
/// table; high-rate in-run events (`Thermo`, `Checkpoint`) carry only the id.
#[derive(Clone, Debug, PartialEq)]
pub enum JobEvent {
    /// The job was accepted into the queue.
    Queued {
        /// The submitted job.
        job: JobId,
        /// The job's display name.
        name: String,
    },
    /// A lane popped the job and leased it a runtime.
    Started {
        /// The running job.
        job: JobId,
        /// The job's display name.
        name: String,
        /// Resolved thread count of the leased runtime.
        threads: usize,
        /// Whether the job claimed the runtime exclusively.
        exclusive: bool,
    },
    /// A thermo sample the job chose to stream (see
    /// [`JobContext::emit_thermo`](super::engine::JobContext::emit_thermo)).
    Thermo {
        /// The running job.
        job: JobId,
        /// Step index of the sample.
        step: u64,
        /// Total energy (eV).
        total_energy: f64,
        /// Instantaneous temperature (K).
        temperature: f64,
    },
    /// The job wrote a checkpoint.
    Checkpoint {
        /// The running job.
        job: JobId,
        /// Step index of the checkpoint.
        step: u64,
    },
    /// The job's closure returned normally.
    Finished {
        /// The finished job.
        job: JobId,
        /// The job's display name.
        name: String,
        /// Wall-clock seconds between `Started` and completion.
        seconds: f64,
    },
    /// A panic unwound out of the job's closure (the lease's runtime
    /// self-heals; the engine keeps draining).
    Faulted {
        /// The faulted job.
        job: JobId,
        /// The job's display name.
        name: String,
        /// Stringified panic payload.
        message: String,
    },
    /// The job was cancelled while still queued and will never run.
    Cancelled {
        /// The cancelled job.
        job: JobId,
        /// The job's display name.
        name: String,
    },
}

impl JobEvent {
    /// The id of the job the event belongs to.
    pub fn job(&self) -> JobId {
        match self {
            JobEvent::Queued { job, .. }
            | JobEvent::Started { job, .. }
            | JobEvent::Thermo { job, .. }
            | JobEvent::Checkpoint { job, .. }
            | JobEvent::Finished { job, .. }
            | JobEvent::Faulted { job, .. }
            | JobEvent::Cancelled { job, .. } => *job,
        }
    }

    /// Stable lower-case event-kind name (for logs and tests).
    pub fn kind(&self) -> &'static str {
        match self {
            JobEvent::Queued { .. } => "queued",
            JobEvent::Started { .. } => "started",
            JobEvent::Thermo { .. } => "thermo",
            JobEvent::Checkpoint { .. } => "checkpoint",
            JobEvent::Finished { .. } => "finished",
            JobEvent::Faulted { .. } => "faulted",
            JobEvent::Cancelled { .. } => "cancelled",
        }
    }
}

/// Why an [`EventSub`] receive returned without an event.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RecvError {
    /// No event is buffered right now (or the timeout expired). The
    /// subscription is still live; later events will arrive.
    Empty,
    /// The bus closed (its engine shut down) and the buffer is drained:
    /// no further event can ever arrive.
    Closed,
}

/// Default per-subscriber buffer capacity ([`EventBus::subscribe`]).
pub const DEFAULT_SUB_CAPACITY: usize = 4096;

struct SubState {
    buf: VecDeque<JobEvent>,
    closed: bool,
}

struct SubShared {
    state: Mutex<SubState>,
    ready: Condvar,
    capacity: usize,
    lagged: AtomicU64,
}

/// One bounded subscription to an [`EventBus`].
///
/// Holds at most `capacity` undelivered events. When the producer outruns
/// the consumer the **oldest** buffered event is dropped to make room and
/// [`EventSub::lagged`] is incremented — emission never blocks on a slow
/// subscriber. Dropping the `EventSub` ends the subscription (pruned on the
/// bus's next emit).
pub struct EventSub {
    shared: Arc<SubShared>,
}

impl EventSub {
    /// Pop the oldest buffered event without blocking.
    pub fn try_recv(&self) -> Result<JobEvent, RecvError> {
        let mut state = lock_recover(&self.shared.state);
        match state.buf.pop_front() {
            Some(ev) => Ok(ev),
            None if state.closed => Err(RecvError::Closed),
            None => Err(RecvError::Empty),
        }
    }

    /// Block until an event arrives or the bus closes.
    pub fn recv(&self) -> Result<JobEvent, RecvError> {
        let mut state = lock_recover(&self.shared.state);
        loop {
            if let Some(ev) = state.buf.pop_front() {
                return Ok(ev);
            }
            if state.closed {
                return Err(RecvError::Closed);
            }
            state = wait_recover(&self.shared.ready, state);
        }
    }

    /// Block up to `timeout` for an event. [`RecvError::Empty`] means the
    /// timeout expired with the subscription still live.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<JobEvent, RecvError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = lock_recover(&self.shared.state);
        loop {
            if let Some(ev) = state.buf.pop_front() {
                return Ok(ev);
            }
            if state.closed {
                return Err(RecvError::Closed);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(RecvError::Empty);
            }
            let (guard, _) = self
                .shared
                .ready
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            state = guard;
        }
    }

    /// Drain every currently buffered event without blocking.
    pub fn try_iter(&self) -> impl Iterator<Item = JobEvent> + '_ {
        std::iter::from_fn(move || self.try_recv().ok())
    }

    /// Events this subscriber lost to drop-oldest overflow so far.
    pub fn lagged(&self) -> u64 {
        self.shared.lagged.load(Ordering::Relaxed)
    }

    /// This subscription's buffer capacity.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }
}

/// A multi-subscriber broadcast channel for [`JobEvent`]s.
///
/// Emission is best-effort fan-out: every live subscriber receives a clone
/// of every event emitted after its [`EventBus::subscribe`] call, subject
/// to its own buffer bound (see [`EventSub`]); subscribers whose receiver
/// was dropped are pruned. With no subscribers, `emit` is a cheap no-op
/// (one short lock), so instrumentation costs nothing unless someone
/// listens.
#[derive(Default)]
pub struct EventBus {
    subscribers: Mutex<Vec<Arc<SubShared>>>,
}

impl EventBus {
    /// A bus with no subscribers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a new subscription with the default buffer capacity
    /// ([`DEFAULT_SUB_CAPACITY`]); events emitted from now on are
    /// delivered.
    pub fn subscribe(&self) -> EventSub {
        self.subscribe_with_capacity(DEFAULT_SUB_CAPACITY)
    }

    /// Open a new subscription buffering at most `capacity` undelivered
    /// events (min 1); beyond that the oldest is dropped and the
    /// subscriber's [`EventSub::lagged`] count grows.
    pub fn subscribe_with_capacity(&self, capacity: usize) -> EventSub {
        let shared = Arc::new(SubShared {
            state: Mutex::new(SubState {
                buf: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
            lagged: AtomicU64::new(0),
        });
        lock_recover(&self.subscribers).push(shared.clone());
        EventSub { shared }
    }

    /// Broadcast one event to every live subscriber. Never blocks: a full
    /// subscriber buffer sheds its oldest event instead.
    pub fn emit(&self, event: JobEvent) {
        let mut subs = lock_recover(&self.subscribers);
        subs.retain(|sub| {
            // The EventSub side holds one Arc; ours is the other. A lone
            // strong count means the receiver is gone — prune.
            if Arc::strong_count(sub) == 1 {
                return false;
            }
            let mut state = lock_recover(&sub.state);
            if state.buf.len() >= sub.capacity {
                state.buf.pop_front();
                sub.lagged.fetch_add(1, Ordering::Relaxed);
            }
            state.buf.push_back(event.clone());
            drop(state);
            sub.ready.notify_all();
            true
        });
    }

    /// Close every subscription: blocked receivers wake, drain what is
    /// buffered, then see [`RecvError::Closed`]. Called on engine
    /// shutdown; emitting afterwards is a no-op for closed subscribers.
    pub fn close(&self) {
        let mut subs = lock_recover(&self.subscribers);
        for sub in subs.drain(..) {
            lock_recover(&sub.state).closed = true;
            sub.ready.notify_all();
        }
    }

    /// Number of live subscriptions (dropped receivers still count until
    /// the next `emit` prunes them).
    pub fn subscriber_count(&self) -> usize {
        lock_recover(&self.subscribers).len()
    }
}

impl Drop for EventBus {
    fn drop(&mut self) {
        // Wake any receiver still blocked in recv(): no event can ever
        // arrive once the bus is gone.
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fan_out_to_every_subscriber() {
        let bus = EventBus::new();
        let a = bus.subscribe();
        let b = bus.subscribe();
        bus.emit(JobEvent::Queued {
            job: 7,
            name: "x".into(),
        });
        for rx in [&a, &b] {
            let ev = rx.try_recv().unwrap();
            assert_eq!(ev.job(), 7);
            assert_eq!(ev.kind(), "queued");
        }
    }

    #[test]
    fn dropped_subscribers_are_pruned_on_emit() {
        let bus = EventBus::new();
        let keep = bus.subscribe();
        drop(bus.subscribe());
        assert_eq!(bus.subscriber_count(), 2);
        bus.emit(JobEvent::Checkpoint { job: 1, step: 10 });
        assert_eq!(bus.subscriber_count(), 1);
        assert_eq!(keep.try_recv().unwrap().kind(), "checkpoint");
    }

    #[test]
    fn subscription_only_sees_later_events() {
        let bus = EventBus::new();
        bus.emit(JobEvent::Queued {
            job: 1,
            name: "early".into(),
        });
        let rx = bus.subscribe();
        bus.emit(JobEvent::Finished {
            job: 1,
            name: "early".into(),
            seconds: 0.5,
        });
        assert_eq!(rx.try_recv().unwrap().kind(), "finished");
        assert_eq!(rx.try_recv(), Err(RecvError::Empty));
    }

    #[test]
    fn overflow_drops_oldest_and_counts_lag() {
        let bus = EventBus::new();
        let rx = bus.subscribe_with_capacity(3);
        for job in 0..5 {
            bus.emit(JobEvent::Checkpoint { job, step: job });
        }
        // Jobs 0 and 1 were shed; 2, 3, 4 survive in order.
        let survivors: Vec<JobId> = rx.try_iter().map(|e| e.job()).collect();
        assert_eq!(survivors, vec![2, 3, 4]);
        assert_eq!(rx.lagged(), 2);
        // A lagging subscriber never slowed the producer; a fresh one is
        // unaffected by its neighbor's overflow.
        let fresh = bus.subscribe_with_capacity(3);
        bus.emit(JobEvent::Checkpoint { job: 9, step: 0 });
        assert_eq!(fresh.lagged(), 0);
        assert_eq!(fresh.try_recv().unwrap().job(), 9);
    }

    #[test]
    fn closed_bus_wakes_blocked_receivers() {
        let bus = EventBus::new();
        let rx = bus.subscribe();
        bus.emit(JobEvent::Checkpoint { job: 1, step: 1 });
        drop(bus);
        // Buffered events still drain after close, then Closed is final.
        assert_eq!(rx.recv().unwrap().kind(), "checkpoint");
        assert_eq!(rx.recv(), Err(RecvError::Closed));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvError::Closed)
        );
    }

    #[test]
    fn recv_timeout_reports_empty_on_a_live_bus() {
        let bus = EventBus::new();
        let rx = bus.subscribe();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvError::Empty)
        );
    }
}
