//! The bounded, backpressured job queue.
//!
//! A [`JobQueue`] is a fixed-capacity FIFO with condvar-blocking on both
//! ends: [`JobQueue::push`] blocks while the queue is full (this *is* the
//! engine's backpressure — a producer that outruns the lanes is slowed to
//! their pace instead of growing an unbounded backlog), and
//! [`JobQueue::pop`] blocks while it is empty. [`JobQueue::try_push`]
//! returns [`SubmitError::Full`] instead of blocking, for producers that
//! would rather shed load. [`JobQueue::close`] wakes everyone: pushes start
//! failing with [`SubmitError::Closed`], pops drain what remains and then
//! return `None` — the lane shutdown signal.
//!
//! Pending entries can be removed by id ([`JobQueue::cancel`]), which is
//! the whole cancellation story for queued jobs: a job that never reaches a
//! lane never runs.

use super::events::JobId;
use crate::runtime::{lock_recover, wait_recover};
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Condvar, Mutex};

/// Why a submission was not accepted.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity (only from [`JobQueue::try_push`];
    /// [`JobQueue::push`] blocks instead).
    Full,
    /// The queue was closed; no further submissions are accepted.
    Closed,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Full => f.write_str("job queue is full"),
            SubmitError::Closed => f.write_str("job queue is closed"),
        }
    }
}

impl std::error::Error for SubmitError {}

struct QueueState<T> {
    items: VecDeque<(JobId, T)>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer FIFO of `(JobId, payload)`.
pub struct JobQueue<T> {
    state: Mutex<QueueState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// A queue holding at most `capacity` pending entries (min 1).
    pub fn bounded(capacity: usize) -> Self {
        JobQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pending entries right now.
    pub fn len(&self) -> usize {
        lock_recover(&self.state).items.len()
    }

    /// Whether no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueue, blocking while the queue is full. Fails only once the
    /// queue is closed; the payload rides back in the error so the caller
    /// keeps ownership.
    pub fn push(&self, id: JobId, item: T) -> Result<(), (SubmitError, T)> {
        let mut state = lock_recover(&self.state);
        loop {
            if state.closed {
                return Err((SubmitError::Closed, item));
            }
            if state.items.len() < self.capacity {
                state.items.push_back((id, item));
                drop(state);
                self.not_empty.notify_one();
                return Ok(());
            }
            state = wait_recover(&self.not_full, state);
        }
    }

    /// Enqueue without blocking: [`SubmitError::Full`] when at capacity.
    pub fn try_push(&self, id: JobId, item: T) -> Result<(), (SubmitError, T)> {
        let mut state = lock_recover(&self.state);
        if state.closed {
            return Err((SubmitError::Closed, item));
        }
        if state.items.len() >= self.capacity {
            return Err((SubmitError::Full, item));
        }
        state.items.push_back((id, item));
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeue the oldest entry, blocking while the queue is empty.
    /// Returns `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<(JobId, T)> {
        let mut state = lock_recover(&self.state);
        loop {
            if let Some(entry) = state.items.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(entry);
            }
            if state.closed {
                return None;
            }
            state = wait_recover(&self.not_empty, state);
        }
    }

    /// Remove a pending entry by id, returning its payload — the caller
    /// decides what a cancelled job's terminal state looks like. `None`
    /// when the id already left the queue (running, finished, or never
    /// submitted): cancellation of queued work is exact, of started work
    /// impossible at this layer.
    pub fn cancel(&self, id: JobId) -> Option<T> {
        let mut state = lock_recover(&self.state);
        let at = state.items.iter().position(|(q, _)| *q == id)?;
        let (_, item) = state.items.remove(at).expect("position() found the entry");
        drop(state);
        self.not_full.notify_one();
        Some(item)
    }

    /// Close the queue: wake every blocked producer and consumer, reject
    /// future pushes, let pops drain the backlog then return `None`.
    pub fn close(&self) {
        lock_recover(&self.state).closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Whether [`JobQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        lock_recover(&self.state).closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_order_and_capacity() {
        let q = JobQueue::bounded(2);
        assert_eq!(q.capacity(), 2);
        q.try_push(1, "a").unwrap();
        q.try_push(2, "b").unwrap();
        let (err, item) = q.try_push(3, "c").unwrap_err();
        assert_eq!(err, SubmitError::Full);
        assert_eq!(item, "c");
        assert_eq!(q.pop(), Some((1, "a")));
        assert_eq!(q.pop(), Some((2, "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn push_blocks_until_a_slot_frees() {
        let q = Arc::new(JobQueue::bounded(1));
        q.push(1, 10).unwrap();
        let producer = {
            let q = q.clone();
            std::thread::spawn(move || q.push(2, 20).is_ok())
        };
        // The producer is blocked on a full queue; popping unblocks it.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop(), Some((1, 10)));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some((2, 20)));
    }

    #[test]
    fn close_drains_then_stops() {
        let q = JobQueue::bounded(4);
        q.push(1, "x").unwrap();
        q.close();
        assert!(q.is_closed());
        let (err, _) = q.push(2, "y").unwrap_err();
        assert_eq!(err, SubmitError::Closed);
        assert_eq!(q.pop(), Some((1, "x")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(JobQueue::<u32>::bounded(1));
        let consumer = {
            let q = q.clone();
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn cancel_removes_only_pending_entries() {
        let q = JobQueue::bounded(4);
        q.push(1, "a").unwrap();
        q.push(2, "b").unwrap();
        q.push(3, "c").unwrap();
        assert_eq!(q.cancel(2), Some("b"));
        assert_eq!(q.cancel(2), None); // already gone
        assert_eq!(q.pop(), Some((1, "a")));
        assert_eq!(q.cancel(1), None); // already popped
        assert_eq!(q.pop(), Some((3, "c")));
    }
}
