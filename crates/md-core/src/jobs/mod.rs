//! Simulation-as-a-service: the job engine.
//!
//! This module family turns the one-shot "loop over variants" execution
//! model into a long-running submission service (see `README.md` in this
//! directory for the architecture):
//!
//! - [`engine`] — the [`JobEngine`]: lane threads, the runtime pool with
//!   shared/exclusive leases, typed [`JobHandle`]s.
//! - [`queue`] — the bounded, backpressured [`JobQueue`].
//! - [`cache`] — the [`ArtifactCache`] keyed by spec hash.
//! - [`events`] — the [`JobEvent`] stream and its [`EventBus`].
//!
//! The engine is deliberately payload-generic: it schedules closures, not
//! scenarios. The scenario layer (`lammps-tersoff-vector`'s
//! `scenario::exec`) builds `JobSpec`s from scenario variants and is the
//! canonical client; tests and tools can submit arbitrary work.

pub mod cache;
pub mod engine;
pub mod events;
pub mod queue;

pub use cache::{ArtifactCache, ArtifactKey, CacheBudget, CacheStats};
pub use engine::{
    EngineConfig, EngineStats, JobContext, JobEngine, JobHandle, JobOutcome, JobSpec, JobStatus,
};
pub use events::{EventBus, EventSub, JobEvent, JobId, RecvError, DEFAULT_SUB_CAPACITY};
pub use queue::{JobQueue, SubmitError};
