//! The job engine: pooled runtimes draining a bounded queue of jobs.
//!
//! A [`JobEngine`] owns `workers` lane threads and a [`RuntimePool`] of
//! [`ParallelRuntime`]s. Submitting a [`JobSpec`] enqueues a closure onto
//! the engine's backpressured [`JobQueue`] and returns a typed
//! [`JobHandle`] to await, poll or cancel it. Each lane pops jobs in FIFO
//! order, leases a runtime sized to the job's thread request — *shared*
//! leases pack many small jobs onto one runtime per thread count, an
//! *exclusive* lease claims a whole runtime for one big job — and runs the
//! closure under `catch_unwind`, so one job's panic is a typed
//! [`JobOutcome::Faulted`] for its own handle and nothing else.
//!
//! Determinism: a job's result depends only on its own inputs and the
//! runtime it leases. Runtimes produce bitwise-identical results across
//! thread counts (fixed chunk boundaries, ordered merges — see
//! [`crate::runtime`]), concurrent dispatches on a shared runtime
//! serialize on the worker pool's own lock, and the [`ArtifactCache`] only
//! holds outputs of deterministic builders. Engine scheduling therefore
//! cannot change any job's bits — only the order jobs finish in. The
//! bitwise-equivalence suite (`tests/job_engine.rs` at the workspace root)
//! pins this.

use super::cache::{ArtifactCache, CacheBudget, CacheStats};
use super::events::{EventBus, EventSub, JobEvent, JobId};
use super::queue::{JobQueue, SubmitError};
use crate::runtime::{
    lock_recover, panic_payload_string, resolve_threads, wait_recover, ParallelRuntime,
};
use std::any::Any;
use std::collections::HashMap;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Configuration and stats
// ---------------------------------------------------------------------------

/// How a [`JobEngine`] is sized.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Lane threads draining the queue — the number of jobs in flight at
    /// once, and the cap on pooled runtimes per thread count (min 1).
    pub workers: usize,
    /// Bounded queue capacity; a full queue blocks [`JobEngine::submit`]
    /// (backpressure) and fails [`JobEngine::try_submit`] (min 1).
    pub queue_depth: usize,
    /// Retention budget of the engine's [`ArtifactCache`]. Effectively
    /// unbounded by default (right for one-shot batches); a long-running
    /// server sets real bounds so the cache cannot leak.
    pub cache_budget: CacheBudget,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 1,
            queue_depth: 64,
            cache_budget: CacheBudget::default(),
        }
    }
}

impl EngineConfig {
    fn normalized(self) -> Self {
        EngineConfig {
            workers: self.workers.max(1),
            queue_depth: self.queue_depth.max(1),
            cache_budget: self.cache_budget,
        }
    }
}

/// A point-in-time snapshot of the engine's counters, embedded in
/// `ScenarioReport` JSON and `BENCH_throughput.json` and exposed by
/// `tersoff-serve`'s `/metrics`. Take one with
/// [`JobEngine::stats_snapshot`] — a single consistent read, cheap enough
/// for a metrics endpoint to call per scrape.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Lane threads (pool size).
    pub workers: usize,
    /// Queue capacity.
    pub queue_depth: usize,
    /// Jobs waiting in the queue right now.
    pub queue_len: usize,
    /// Jobs accepted by `submit`/`try_submit`.
    pub submitted: u64,
    /// Jobs whose closure returned normally.
    pub finished: u64,
    /// Jobs whose closure panicked.
    pub faulted: u64,
    /// Jobs cancelled while still queued.
    pub cancelled: u64,
    /// Runtimes ever constructed by the pool (pooling works when this
    /// stays far below `submitted`).
    pub runtimes_created: u64,
    /// Runtimes currently pooled.
    pub live_runtimes: usize,
    /// Artifact-cache counters.
    pub cache: CacheStats,
    /// Wall-clock time since the engine started.
    pub uptime: Duration,
}

// ---------------------------------------------------------------------------
// Job specification and handle
// ---------------------------------------------------------------------------

/// A unit of work: a name, a runtime request, and a closure producing `T`.
pub struct JobSpec<T> {
    name: String,
    threads: usize,
    exclusive: bool,
    run: Box<dyn FnOnce(&mut JobContext<'_>) -> T + Send>,
}

impl<T: Send + 'static> JobSpec<T> {
    /// A job running `run` on a shared single-slot lease (the packing
    /// default for small jobs).
    pub fn new<F>(name: impl Into<String>, run: F) -> Self
    where
        F: FnOnce(&mut JobContext<'_>) -> T + Send + 'static,
    {
        JobSpec {
            name: name.into(),
            threads: 1,
            exclusive: false,
            run: Box::new(run),
        }
    }

    /// Request a runtime of `threads` (0 = all CPUs, like everywhere else).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Claim the leased runtime exclusively: no other job shares it while
    /// this one runs. The right call for big multi-threaded jobs, where
    /// sharing would serialize two whole simulations on one worker team.
    pub fn exclusive(mut self, exclusive: bool) -> Self {
        self.exclusive = exclusive;
        self
    }
}

/// How a job ended, from the consumer's side.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted, not yet popped by a lane.
    Queued,
    /// A lane is executing it.
    Running,
    /// The closure returned; [`JobHandle::wait`] yields the value.
    Finished,
    /// The closure panicked; [`JobHandle::wait`] yields the message.
    Faulted,
    /// Cancelled while queued; the closure never ran.
    Cancelled,
}

/// A finished job's result.
#[derive(Debug)]
pub enum JobOutcome<T> {
    /// The closure's return value.
    Finished(T),
    /// The stringified panic that unwound out of the closure.
    Faulted(String),
    /// The job was cancelled before a lane picked it up.
    Cancelled,
}

enum RawOutcome {
    Value(Box<dyn Any + Send>),
    Fault(String),
    Cancelled,
}

struct HandleState {
    status: JobStatus,
    outcome: Option<RawOutcome>,
}

struct HandleShared {
    state: Mutex<HandleState>,
    done: Condvar,
    cancel_requested: AtomicBool,
}

impl HandleShared {
    fn new() -> Self {
        HandleShared {
            state: Mutex::new(HandleState {
                status: JobStatus::Queued,
                outcome: None,
            }),
            done: Condvar::new(),
            cancel_requested: AtomicBool::new(false),
        }
    }

    fn finish(&self, status: JobStatus, outcome: RawOutcome) {
        let mut state = lock_recover(&self.state);
        state.status = status;
        state.outcome = Some(outcome);
        drop(state);
        self.done.notify_all();
    }
}

/// The typed ticket for one submitted job.
pub struct JobHandle<T> {
    id: JobId,
    name: String,
    shared: Arc<HandleShared>,
    engine: Arc<EngineShared>,
    _result: PhantomData<fn() -> T>,
}

impl<T: Send + 'static> JobHandle<T> {
    /// The engine-unique job id.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// The job's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The job's current status, without blocking.
    pub fn poll(&self) -> JobStatus {
        lock_recover(&self.shared.state).status
    }

    /// Block until the job reaches a terminal state and return its outcome.
    pub fn wait(self) -> JobOutcome<T> {
        let mut state = lock_recover(&self.shared.state);
        while state.outcome.is_none() {
            state = wait_recover(&self.shared.done, state);
        }
        match state.outcome.take().expect("loop exits with an outcome") {
            RawOutcome::Value(value) => JobOutcome::Finished(
                *value
                    .downcast::<T>()
                    .expect("submit() pins the handle type to the closure's return type"),
            ),
            RawOutcome::Fault(message) => JobOutcome::Faulted(message),
            RawOutcome::Cancelled => JobOutcome::Cancelled,
        }
    }

    /// Cancel the job if it is still queued. Returns `true` when this call
    /// removed it from the queue (the closure will never run and
    /// [`JobHandle::wait`] yields [`JobOutcome::Cancelled`]); `false` when
    /// the job already reached a lane — a running job is never interrupted,
    /// but the cancellation flag stays visible to the closure through
    /// [`JobContext::cancel_requested`] for cooperative early exit.
    pub fn cancel(&self) -> bool {
        self.shared.cancel_requested.store(true, Ordering::SeqCst);
        match self.engine.queue.cancel(self.id) {
            Some(job) => {
                self.engine
                    .finish_cancelled(self.id, &job.name, &job.handle);
                true
            }
            None => false,
        }
    }
}

// ---------------------------------------------------------------------------
// The runtime pool
// ---------------------------------------------------------------------------

struct Slot {
    resolved: usize,
    runtime: ParallelRuntime,
    users: usize,
    exclusive: bool,
    poisoned: bool,
}

struct PoolState {
    slots: HashMap<u64, Slot>,
    next_slot: u64,
    created: u64,
}

/// Pooled [`ParallelRuntime`]s keyed by resolved thread count.
///
/// Shared leases all land on the *same* slot per thread count — that is
/// the packing: worker-pool dispatches already serialize on the runtime's
/// internal lock, and a 1-thread runtime never even spawns a pool, so
/// sharing is free and correct. Exclusive leases take a slot with no other
/// users and fence everyone else out until released. At most
/// `max_per_count` live slots exist per thread count (one per lane —
/// beyond that a lease waits for a release). A poisoned slot (its runtime
/// possibly wedged by an abandoned timeout thread) is never leased again
/// and is dropped once its last user releases.
struct RuntimePool {
    state: Mutex<PoolState>,
    freed: Condvar,
    max_per_count: usize,
}

struct Lease {
    slot: u64,
    requested: usize,
    resolved: usize,
    exclusive: bool,
    runtime: ParallelRuntime,
}

impl RuntimePool {
    fn new(max_per_count: usize) -> Self {
        RuntimePool {
            state: Mutex::new(PoolState {
                slots: HashMap::new(),
                next_slot: 0,
                created: 0,
            }),
            freed: Condvar::new(),
            max_per_count: max_per_count.max(1),
        }
    }

    fn acquire(&self, requested: usize, exclusive: bool) -> Lease {
        let resolved = resolve_threads(requested);
        let mut state = lock_recover(&self.state);
        loop {
            let found = state
                .slots
                .iter_mut()
                .find(|(_, s)| {
                    s.resolved == resolved
                        && !s.poisoned
                        && !s.exclusive
                        && (!exclusive || s.users == 0)
                })
                .map(|(&id, slot)| {
                    if exclusive {
                        slot.exclusive = true;
                    } else {
                        slot.users += 1;
                    }
                    Lease {
                        slot: id,
                        requested,
                        resolved,
                        exclusive,
                        runtime: slot.runtime.clone(),
                    }
                });
            if let Some(lease) = found {
                return lease;
            }
            let live = state
                .slots
                .values()
                .filter(|s| s.resolved == resolved && !s.poisoned)
                .count();
            if live < self.max_per_count {
                let id = state.next_slot;
                state.next_slot += 1;
                state.created += 1;
                let runtime = ParallelRuntime::new(requested);
                state.slots.insert(
                    id,
                    Slot {
                        resolved,
                        runtime: runtime.clone(),
                        users: usize::from(!exclusive),
                        exclusive,
                        poisoned: false,
                    },
                );
                return Lease {
                    slot: id,
                    requested,
                    resolved,
                    exclusive,
                    runtime,
                };
            }
            state = wait_recover(&self.freed, state);
        }
    }

    fn release(&self, lease: Lease) {
        let mut state = lock_recover(&self.state);
        if let Some(slot) = state.slots.get_mut(&lease.slot) {
            if lease.exclusive {
                slot.exclusive = false;
            } else {
                slot.users = slot.users.saturating_sub(1);
            }
            if slot.poisoned && slot.users == 0 && !slot.exclusive {
                state.slots.remove(&lease.slot);
            }
        }
        drop(state);
        self.freed.notify_all();
    }

    /// Mark a slot as never-lease-again (dropped on last release).
    fn poison(&self, slot: u64) {
        let mut state = lock_recover(&self.state);
        if let Some(s) = state.slots.get_mut(&slot) {
            s.poisoned = true;
        }
    }

    /// `(runtimes_created, live_runtimes)` under one lock acquisition.
    fn counters(&self) -> (u64, usize) {
        let state = lock_recover(&self.state);
        (state.created, state.slots.len())
    }
}

// ---------------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------------

/// The type-erased job closure a lane executes: takes the job's context,
/// returns the boxed result the typed handle downcasts.
type JobClosure = Box<dyn FnOnce(&mut JobContext<'_>) -> Box<dyn Any + Send> + Send>;

struct QueuedJob {
    name: String,
    threads: usize,
    exclusive: bool,
    run: JobClosure,
    handle: Arc<HandleShared>,
}

struct EngineShared {
    config: EngineConfig,
    queue: JobQueue<QueuedJob>,
    events: Arc<EventBus>,
    cache: Arc<ArtifactCache>,
    pool: RuntimePool,
    next_id: AtomicU64,
    submitted: AtomicU64,
    finished: AtomicU64,
    faulted: AtomicU64,
    cancelled: AtomicU64,
    started: Instant,
}

impl EngineShared {
    // In every terminal path the handle resolves *last*: a consumer whose
    // wait() returned must already see the counters bumped and the
    // terminal event emitted.
    fn finish_cancelled(&self, id: JobId, name: &str, handle: &HandleShared) {
        self.cancelled.fetch_add(1, Ordering::Relaxed);
        self.events.emit(JobEvent::Cancelled {
            job: id,
            name: name.to_string(),
        });
        handle.finish(JobStatus::Cancelled, RawOutcome::Cancelled);
    }

    fn run_job(self: &Arc<Self>, id: JobId, job: QueuedJob) {
        if job.handle.cancel_requested.load(Ordering::SeqCst) {
            // Cancelled after the handle's queue.cancel() lost the race
            // with our pop: honor the intent, never start the closure.
            self.finish_cancelled(id, &job.name, &job.handle);
            return;
        }
        lock_recover(&job.handle.state).status = JobStatus::Running;
        let lease = self.pool.acquire(job.threads, job.exclusive);
        self.events.emit(JobEvent::Started {
            job: id,
            name: job.name.clone(),
            threads: lease.resolved,
            exclusive: lease.exclusive,
        });
        let started = Instant::now();
        let mut ctx = JobContext {
            id,
            name: job.name.clone(),
            engine: self,
            handle: job.handle.clone(),
            lease,
        };
        let run = job.run;
        let result = catch_unwind(AssertUnwindSafe(|| run(&mut ctx)));
        let JobContext { lease, .. } = ctx;
        self.pool.release(lease);
        match result {
            Ok(value) => {
                self.finished.fetch_add(1, Ordering::Relaxed);
                self.events.emit(JobEvent::Finished {
                    job: id,
                    name: job.name,
                    seconds: started.elapsed().as_secs_f64(),
                });
                job.handle
                    .finish(JobStatus::Finished, RawOutcome::Value(value));
            }
            Err(payload) => {
                let message = panic_payload_string(payload.as_ref());
                self.faulted.fetch_add(1, Ordering::Relaxed);
                self.events.emit(JobEvent::Faulted {
                    job: id,
                    name: job.name,
                    message: message.clone(),
                });
                job.handle
                    .finish(JobStatus::Faulted, RawOutcome::Fault(message));
            }
        }
    }
}

/// What a running job sees of its engine: the leased runtime, the shared
/// artifact cache, the event stream, and its own cancellation flag.
pub struct JobContext<'e> {
    id: JobId,
    name: String,
    engine: &'e Arc<EngineShared>,
    handle: Arc<HandleShared>,
    lease: Lease,
}

impl JobContext<'_> {
    /// This job's id.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// This job's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The leased runtime — hand it to `SimulationBuilder::runtime`.
    pub fn runtime(&self) -> &ParallelRuntime {
        &self.lease.runtime
    }

    /// Resolved thread count of the leased runtime.
    pub fn resolved_threads(&self) -> usize {
        self.lease.resolved
    }

    /// The engine's shared artifact cache.
    pub fn cache(&self) -> &ArtifactCache {
        &self.engine.cache
    }

    /// An owning handle to the cache, for attempts that hop threads (the
    /// timeout path runs the attempt on its own worker thread).
    pub fn cache_handle(&self) -> Arc<ArtifactCache> {
        self.engine.cache.clone()
    }

    /// An owning handle to the event bus, same reason as
    /// [`JobContext::cache_handle`].
    pub fn events(&self) -> Arc<EventBus> {
        self.engine.events.clone()
    }

    /// Whether [`JobHandle::cancel`] was called after this job already
    /// started — cooperative-cancellation poll point.
    pub fn cancel_requested(&self) -> bool {
        self.handle.cancel_requested.load(Ordering::SeqCst)
    }

    /// Publish a thermo sample on the engine's event stream.
    pub fn emit_thermo(&self, step: u64, total_energy: f64, temperature: f64) {
        self.engine.events.emit(JobEvent::Thermo {
            job: self.id,
            step,
            total_energy,
            temperature,
        });
    }

    /// Publish a checkpoint notification on the engine's event stream.
    pub fn emit_checkpoint(&self, step: u64) {
        self.engine
            .events
            .emit(JobEvent::Checkpoint { job: self.id, step });
    }

    /// Swap the current lease for a fresh runtime and poison the old slot
    /// so no later job leases it. For when the job abandoned a worker
    /// thread that may still hold the old runtime (the scenario layer's
    /// wall-clock timeout does exactly this before a retry).
    pub fn refresh_runtime(&mut self) {
        self.engine.pool.poison(self.lease.slot);
        let fresh = self
            .engine
            .pool
            .acquire(self.lease.requested, self.lease.exclusive);
        let old = std::mem::replace(&mut self.lease, fresh);
        self.engine.pool.release(old);
    }
}

/// The engine: see the module docs for the architecture.
pub struct JobEngine {
    shared: Arc<EngineShared>,
    lanes: Vec<JoinHandle<()>>,
}

impl JobEngine {
    /// Start an engine with `config.workers` lanes (and runtimes-per-count
    /// cap) and a `config.queue_depth`-deep queue.
    pub fn new(config: EngineConfig) -> Self {
        let config = config.normalized();
        let shared = Arc::new(EngineShared {
            config,
            queue: JobQueue::bounded(config.queue_depth),
            events: Arc::new(EventBus::new()),
            cache: Arc::new(ArtifactCache::with_budget(config.cache_budget)),
            pool: RuntimePool::new(config.workers),
            next_id: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            finished: AtomicU64::new(0),
            faulted: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            started: Instant::now(),
        });
        let lanes = (0..config.workers)
            .map(|lane| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("job-lane-{lane}"))
                    .spawn(move || {
                        while let Some((id, job)) = shared.queue.pop() {
                            shared.run_job(id, job);
                        }
                    })
                    .expect("spawn job lane")
            })
            .collect();
        JobEngine { shared, lanes }
    }

    /// An engine with `workers` lanes and the default queue depth.
    pub fn with_workers(workers: usize) -> Self {
        JobEngine::new(EngineConfig {
            workers,
            ..EngineConfig::default()
        })
    }

    /// Submit a job, blocking while the queue is full (backpressure).
    pub fn submit<T: Send + 'static>(&self, spec: JobSpec<T>) -> Result<JobHandle<T>, SubmitError> {
        self.submit_inner(spec, false)
    }

    /// Submit without blocking: [`SubmitError::Full`] when the queue is at
    /// capacity (the spec is consumed either way).
    pub fn try_submit<T: Send + 'static>(
        &self,
        spec: JobSpec<T>,
    ) -> Result<JobHandle<T>, SubmitError> {
        self.submit_inner(spec, true)
    }

    fn submit_inner<T: Send + 'static>(
        &self,
        spec: JobSpec<T>,
        non_blocking: bool,
    ) -> Result<JobHandle<T>, SubmitError> {
        let shared = &self.shared;
        let id = shared.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let handle = Arc::new(HandleShared::new());
        let run = spec.run;
        let job = QueuedJob {
            name: spec.name.clone(),
            threads: spec.threads,
            exclusive: spec.exclusive,
            run: Box::new(move |ctx| Box::new(run(ctx)) as Box<dyn Any + Send>),
            handle: handle.clone(),
        };
        // Queued is emitted before the push so a lane's Started can never
        // precede it in the stream.
        shared.events.emit(JobEvent::Queued {
            job: id,
            name: spec.name.clone(),
        });
        let pushed = if non_blocking {
            shared.queue.try_push(id, job)
        } else {
            shared.queue.push(id, job)
        };
        match pushed {
            Ok(()) => {
                shared.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(JobHandle {
                    id,
                    name: spec.name,
                    shared: handle,
                    engine: shared.clone(),
                    _result: PhantomData,
                })
            }
            Err((err, job)) => {
                // Balance the Queued event so subscribers see a terminal
                // state for every id they ever heard of.
                shared.finish_cancelled(id, &job.name, &job.handle);
                Err(err)
            }
        }
    }

    /// Subscribe to the engine's [`JobEvent`] stream with the default
    /// per-subscriber buffer bound (see
    /// [`EventSub`](super::events::EventSub): drop-oldest on overflow, so a
    /// stalled subscriber never blocks job progress).
    pub fn subscribe(&self) -> EventSub {
        self.shared.events.subscribe()
    }

    /// Subscribe with an explicit buffer capacity — larger for recorders
    /// that must not miss events, smaller for best-effort tails.
    pub fn subscribe_with_capacity(&self, capacity: usize) -> EventSub {
        self.shared.events.subscribe_with_capacity(capacity)
    }

    /// The shared artifact cache.
    pub fn cache(&self) -> &ArtifactCache {
        &self.shared.cache
    }

    /// The engine's (normalized) configuration.
    pub fn config(&self) -> EngineConfig {
        self.shared.config
    }

    /// Jobs currently waiting in the queue.
    pub fn queue_len(&self) -> usize {
        self.shared.queue.len()
    }

    /// Counter snapshot. Alias of [`JobEngine::stats_snapshot`].
    pub fn stats(&self) -> EngineStats {
        self.stats_snapshot()
    }

    /// A single consistent snapshot of every engine counter: one pool-lock
    /// read, one cache-lock read, the atomics, the live queue length and
    /// the uptime — no lock juggling at call sites. What the `tersoff-run`
    /// footer and `tersoff-serve`'s `/metrics` report.
    pub fn stats_snapshot(&self) -> EngineStats {
        let s = &self.shared;
        let (runtimes_created, live_runtimes) = s.pool.counters();
        EngineStats {
            workers: s.config.workers,
            queue_depth: s.config.queue_depth,
            queue_len: s.queue.len(),
            submitted: s.submitted.load(Ordering::Relaxed),
            finished: s.finished.load(Ordering::Relaxed),
            faulted: s.faulted.load(Ordering::Relaxed),
            cancelled: s.cancelled.load(Ordering::Relaxed),
            runtimes_created,
            live_runtimes,
            cache: s.cache.stats(),
            uptime: s.started.elapsed(),
        }
    }

    /// Stop accepting jobs, drain the backlog, join the lanes, and return
    /// the final counter snapshot (what a server's drain footer reports).
    /// `Drop` does the same minus the snapshot; this form names the intent.
    pub fn shutdown(mut self) -> EngineStats {
        self.close_and_join();
        self.stats_snapshot()
    }

    fn close_and_join(&mut self) {
        self.shared.queue.close();
        for lane in self.lanes.drain(..) {
            let _ = lane.join();
        }
        // Every job is terminal and every event emitted: close the bus so
        // blocked subscribers (a server's event recorder, a streaming
        // client's tail) see a definitive end-of-stream.
        self.shared.events.close();
    }
}

impl Drop for JobEngine {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn submit_and_wait_returns_the_value() {
        let engine = JobEngine::with_workers(2);
        let handle = engine
            .submit(JobSpec::new("answer", |_ctx| 41 + 1))
            .unwrap();
        match handle.wait() {
            JobOutcome::Finished(v) => assert_eq!(v, 42),
            other => panic!("expected Finished, got {other:?}"),
        }
        let stats = engine.stats();
        assert_eq!((stats.submitted, stats.finished), (1, 1));
    }

    #[test]
    fn one_lane_runs_jobs_in_submission_order() {
        let engine = JobEngine::with_workers(1);
        let (tx, rx) = mpsc::channel();
        let handles: Vec<_> = (0..5)
            .map(|i| {
                let tx = tx.clone();
                engine
                    .submit(JobSpec::new(format!("job-{i}"), move |_ctx| {
                        tx.send(i).unwrap();
                        i
                    }))
                    .unwrap()
            })
            .collect();
        for handle in handles {
            let _ = handle.wait();
        }
        let order: Vec<i32> = rx.try_iter().collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn shared_jobs_pack_onto_one_runtime_per_thread_count() {
        let engine = JobEngine::with_workers(4);
        let handles: Vec<_> = (0..8)
            .map(|i| {
                engine
                    .submit(JobSpec::new(format!("small-{i}"), |ctx| {
                        ctx.resolved_threads()
                    }))
                    .unwrap()
            })
            .collect();
        for handle in handles {
            assert!(matches!(handle.wait(), JobOutcome::Finished(_)));
        }
        // All 8 shared their thread-count's single slot.
        assert_eq!(engine.stats().runtimes_created, 1);
    }

    #[test]
    fn exclusive_jobs_get_their_own_runtime() {
        let engine = JobEngine::with_workers(2);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let gate_rx = Mutex::new(gate_rx);
        let gate_rx = Arc::new(gate_rx);
        let slow = {
            let gate = gate_rx.clone();
            engine
                .submit(
                    JobSpec::new("slow", move |_ctx| {
                        let _ = lock_recover(&gate).recv();
                    })
                    .exclusive(true),
                )
                .unwrap()
        };
        // While "slow" holds its slot exclusively, a second exclusive job
        // must get a second runtime.
        let fast = engine
            .submit(JobSpec::new("fast", |_ctx| ()).exclusive(true))
            .unwrap();
        assert!(matches!(fast.wait(), JobOutcome::Finished(())));
        assert_eq!(engine.stats().runtimes_created, 2);
        gate_tx.send(()).unwrap();
        assert!(matches!(slow.wait(), JobOutcome::Finished(())));
    }

    #[test]
    fn a_panicking_job_faults_alone() {
        let engine = JobEngine::with_workers(1);
        let bad = engine
            .submit(JobSpec::new("bad", |_ctx| -> u32 {
                panic!("injected fault")
            }))
            .unwrap();
        let good = engine.submit(JobSpec::new("good", |_ctx| 7u32)).unwrap();
        match bad.wait() {
            JobOutcome::Faulted(msg) => assert!(msg.contains("injected fault"), "{msg}"),
            other => panic!("expected Faulted, got {other:?}"),
        }
        match good.wait() {
            JobOutcome::Finished(v) => assert_eq!(v, 7),
            other => panic!("expected Finished, got {other:?}"),
        }
        let stats = engine.stats();
        assert_eq!((stats.finished, stats.faulted), (1, 1));
    }

    #[test]
    fn cancel_dequeues_pending_jobs_only() {
        let engine = JobEngine::with_workers(1);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let blocker = engine
            .submit(JobSpec::new("blocker", move |_ctx| {
                let _ = gate_rx.recv();
            }))
            .unwrap();
        // Only once the blocker is provably running is "pending" the next
        // queued job (and the blocker past the point of being dequeued).
        while blocker.poll() != JobStatus::Running {
            std::thread::yield_now();
        }
        let pending = engine.submit(JobSpec::new("pending", |_ctx| 1)).unwrap();
        assert!(pending.cancel(), "a queued job must be cancellable");
        assert!(matches!(pending.wait(), JobOutcome::Cancelled));
        gate_tx.send(()).unwrap();
        assert!(!blocker.cancel(), "a running job is not dequeued");
        assert!(matches!(blocker.wait(), JobOutcome::Finished(())));
        assert_eq!(engine.stats().cancelled, 1);
    }

    #[test]
    fn try_submit_reports_backpressure() {
        let engine = JobEngine::new(EngineConfig {
            workers: 1,
            queue_depth: 1,
            ..EngineConfig::default()
        });
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let blocker = engine
            .submit(JobSpec::new("blocker", move |_ctx| {
                let _ = gate_rx.recv();
            }))
            .unwrap();
        // Wait until the lane has popped the blocker, so the queue slot is
        // provably free for the filler and the third submission hits a
        // full queue rather than a race.
        while engine.stats().submitted == 0 || engine.queue_len() > 0 {
            std::thread::yield_now();
        }
        let filler = engine.submit(JobSpec::new("filler", |_ctx| ())).unwrap();
        let overflow = engine.try_submit(JobSpec::new("overflow", |_ctx| ()));
        assert!(matches!(overflow, Err(SubmitError::Full)));
        gate_tx.send(()).unwrap();
        assert!(matches!(blocker.wait(), JobOutcome::Finished(())));
        assert!(matches!(filler.wait(), JobOutcome::Finished(())));
    }

    #[test]
    fn events_arrive_in_lifecycle_order_per_job() {
        let engine = JobEngine::with_workers(1);
        let events = engine.subscribe();
        let handle = engine
            .submit(JobSpec::new("observed", |ctx| {
                ctx.emit_thermo(5, -4.2, 300.0);
                ctx.emit_checkpoint(5);
            }))
            .unwrap();
        let id = handle.id();
        assert!(matches!(handle.wait(), JobOutcome::Finished(())));
        let kinds: Vec<&'static str> = events
            .try_iter()
            .filter(|e| e.job() == id)
            .map(|e| e.kind())
            .collect();
        assert_eq!(
            kinds,
            vec!["queued", "started", "thermo", "checkpoint", "finished"]
        );
    }

    #[test]
    fn a_stalled_subscriber_never_blocks_job_progress() {
        // A subscriber with a 2-event buffer that never drains: if
        // emission could block on it, the batch below would wedge. It
        // must instead finish completely, with the stalled subscriber
        // holding only the newest 2 events and an honest lag count.
        let engine = JobEngine::with_workers(2);
        let stalled = engine.subscribe_with_capacity(2);
        let handles: Vec<_> = (0..10)
            .map(|i| {
                engine
                    .submit(JobSpec::new(format!("burst-{i}"), |ctx| {
                        ctx.emit_thermo(0, -1.0, 300.0);
                    }))
                    .unwrap()
            })
            .collect();
        for handle in handles {
            assert!(matches!(handle.wait(), JobOutcome::Finished(())));
        }
        let stats = engine.stats();
        assert_eq!(stats.finished, 10, "every job finished despite the stall");
        // 10 jobs x (queued + started + thermo + finished) = 40 events
        // were emitted; the stalled subscriber kept 2 and lagged the rest.
        let kept = stalled.try_iter().count();
        assert_eq!(kept, 2);
        assert_eq!(stalled.lagged(), 38);
    }

    #[test]
    fn shutdown_returns_final_stats_and_closes_the_event_stream() {
        let engine = JobEngine::with_workers(1);
        let events = engine.subscribe();
        let handle = engine.submit(JobSpec::new("only", |_ctx| 3u8)).unwrap();
        assert!(matches!(handle.wait(), JobOutcome::Finished(3)));
        let stats = engine.shutdown();
        assert_eq!((stats.submitted, stats.finished), (1, 1));
        assert_eq!(stats.queue_len, 0);
        // Buffered events drain, then the closed bus is definitive.
        let kinds: Vec<_> = events.try_iter().map(|e| e.kind()).collect();
        assert_eq!(kinds, vec!["queued", "started", "finished"]);
        assert_eq!(events.recv(), Err(super::super::events::RecvError::Closed));
    }

    #[test]
    fn refresh_runtime_retires_the_old_slot() {
        let engine = JobEngine::with_workers(1);
        let handle = engine
            .submit(JobSpec::new("refresh", |ctx| {
                let before = ctx.resolved_threads();
                ctx.refresh_runtime();
                assert_eq!(ctx.resolved_threads(), before);
            }))
            .unwrap();
        assert!(matches!(handle.wait(), JobOutcome::Finished(())));
        let stats = engine.stats();
        assert_eq!(stats.runtimes_created, 2);
        // The poisoned original was dropped on release.
        assert_eq!(stats.live_runtimes, 1);
    }

    #[test]
    fn drop_drains_the_backlog() {
        let counter = Arc::new(AtomicU64::new(0));
        {
            let engine = JobEngine::with_workers(2);
            for i in 0..6 {
                let counter = counter.clone();
                engine
                    .submit(JobSpec::new(format!("drain-{i}"), move |_ctx| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    }))
                    .unwrap();
            }
            // Handles dropped without wait(); Drop must still run them all.
        }
        assert_eq!(counter.load(Ordering::Relaxed), 6);
    }
}
