//! Crystal-lattice builders.
//!
//! The paper's benchmark is "a standard LAMMPS benchmark for the simulation
//! of Silicon atoms ... laid out in a regular lattice so that each of them
//! has exactly four nearest neighbors" — the diamond cubic structure. This
//! module generates that lattice (plus the two-species zincblende variant
//! used by the SiC example) at any multiple of the conventional unit cell,
//! optionally with a small random perturbation so that forces are non-zero.

use crate::atom::AtomData;
use crate::simbox::SimBox;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Fractional coordinates of the 8 atoms in the conventional diamond-cubic
/// unit cell. The first four sites form the FCC sub-lattice, the second four
/// are displaced by (¼, ¼, ¼).
const DIAMOND_BASIS: [[f64; 3]; 8] = [
    [0.00, 0.00, 0.00],
    [0.00, 0.50, 0.50],
    [0.50, 0.00, 0.50],
    [0.50, 0.50, 0.00],
    [0.25, 0.25, 0.25],
    [0.25, 0.75, 0.75],
    [0.75, 0.25, 0.75],
    [0.75, 0.75, 0.25],
];

/// Which crystal structure to generate.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LatticeKind {
    /// Diamond cubic, single species (silicon benchmark).
    Diamond,
    /// Zincblende: diamond with the two sub-lattices occupied by different
    /// species (SiC example). Type 0 on the FCC sub-lattice, type 1 on the
    /// displaced sub-lattice.
    Zincblende,
}

/// A lattice description: structure, lattice constant and cell counts.
#[derive(Copy, Clone, Debug)]
pub struct Lattice {
    /// Crystal structure.
    pub kind: LatticeKind,
    /// Conventional-cell lattice constant in Å.
    pub a: f64,
    /// Number of conventional cells in x, y, z.
    pub cells: [usize; 3],
}

impl Lattice {
    /// Diamond-cubic silicon with `nx × ny × nz` cells.
    pub fn silicon(cells: [usize; 3]) -> Self {
        Lattice {
            kind: LatticeKind::Diamond,
            a: crate::units::lattice_constant::SI,
            cells,
        }
    }

    /// A silicon lattice sized to contain *at least* `n_atoms` atoms, keeping
    /// the cell count as cubic as possible — convenient for "32 000 atom"
    /// style benchmark specifications.
    pub fn silicon_with_atoms(n_atoms: usize) -> Self {
        let cells_needed = n_atoms.div_ceil(8).max(1);
        let side = (cells_needed as f64).cbrt().ceil() as usize;
        let mut cells = [side.max(1); 3];
        // Shrink dimensions greedily while the lattice still holds enough
        // atoms, to avoid overshooting by nearly a factor of two.
        for d in (0..3).rev() {
            while cells[d] > 1 {
                let mut trial = cells;
                trial[d] -= 1;
                if trial[0] * trial[1] * trial[2] * 8 >= n_atoms {
                    cells = trial;
                } else {
                    break;
                }
            }
        }
        Lattice {
            kind: LatticeKind::Diamond,
            a: crate::units::lattice_constant::SI,
            cells,
        }
    }

    /// Zincblende SiC with `nx × ny × nz` cells.
    pub fn silicon_carbide(cells: [usize; 3]) -> Self {
        Lattice {
            kind: LatticeKind::Zincblende,
            a: crate::units::lattice_constant::SIC,
            cells,
        }
    }

    /// Number of atoms this lattice generates.
    pub fn n_atoms(&self) -> usize {
        8 * self.cells[0] * self.cells[1] * self.cells[2]
    }

    /// The periodic box that exactly contains the lattice.
    pub fn simbox(&self) -> SimBox {
        SimBox::orthogonal(
            [0.0; 3],
            [
                self.a * self.cells[0] as f64,
                self.a * self.cells[1] as f64,
                self.a * self.cells[2] as f64,
            ],
        )
    }

    /// Generate atom data on the perfect lattice.
    pub fn build(&self) -> (SimBox, AtomData) {
        self.build_perturbed(0.0, 0)
    }

    /// Generate atom data with every coordinate displaced by a uniform random
    /// amount in `[-amplitude, amplitude]` Å (deterministic in `seed`).
    ///
    /// A small perturbation (≈0.05 Å) is what the benchmarks use so that
    /// forces are non-trivial from step 0.
    pub fn build_perturbed(&self, amplitude: f64, seed: u64) -> (SimBox, AtomData) {
        let sim_box = self.simbox();
        let mut atoms = AtomData::with_capacity(self.n_atoms());
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut id = 1u64;
        for cx in 0..self.cells[0] {
            for cy in 0..self.cells[1] {
                for cz in 0..self.cells[2] {
                    for (site, frac) in DIAMOND_BASIS.iter().enumerate() {
                        let mut pos = [
                            (cx as f64 + frac[0]) * self.a,
                            (cy as f64 + frac[1]) * self.a,
                            (cz as f64 + frac[2]) * self.a,
                        ];
                        if amplitude > 0.0 {
                            for p in pos.iter_mut() {
                                *p += rng.gen_range(-amplitude..amplitude);
                            }
                        }
                        let pos = sim_box.wrap(pos);
                        let type_ = match self.kind {
                            LatticeKind::Diamond => 0,
                            LatticeKind::Zincblende => usize::from(site >= 4),
                        };
                        atoms.push_local(pos, [0.0; 3], type_, id);
                        id += 1;
                    }
                }
            }
        }
        (sim_box, atoms)
    }
}

/// Nearest-neighbor distance of a diamond lattice with lattice constant `a`:
/// `a·√3/4` (≈2.35 Å for silicon).
pub fn diamond_nearest_neighbor(a: f64) -> f64 {
    a * 3.0_f64.sqrt() / 4.0
}

/// Second-neighbor distance of a diamond lattice: `a/√2` (≈3.84 Å for Si).
pub fn diamond_second_neighbor(a: f64) -> f64 {
    a / 2.0_f64.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atom_count_is_eight_per_cell() {
        let l = Lattice::silicon([2, 3, 4]);
        assert_eq!(l.n_atoms(), 8 * 24);
        let (_, atoms) = l.build();
        assert_eq!(atoms.n_total(), l.n_atoms());
        assert_eq!(atoms.n_local, l.n_atoms());
    }

    #[test]
    fn box_matches_cell_count() {
        let l = Lattice::silicon([2, 2, 2]);
        let b = l.simbox();
        let a = crate::units::lattice_constant::SI;
        assert!((b.lengths()[0] - 2.0 * a).abs() < 1e-12);
        assert!((b.volume() - (2.0 * a).powi(3)).abs() < 1e-9);
    }

    #[test]
    fn all_atoms_inside_box_and_unique_ids() {
        let (b, atoms) = Lattice::silicon([3, 2, 2]).build_perturbed(0.05, 42);
        assert!(atoms.x.iter().all(|&p| b.contains(p)));
        let mut ids = atoms.id.clone();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), atoms.n_total());
    }

    #[test]
    fn perfect_silicon_has_four_nearest_neighbors() {
        let (b, atoms) = Lattice::silicon([3, 3, 3]).build();
        let nn = diamond_nearest_neighbor(crate::units::lattice_constant::SI);
        let cutoff_sq = (nn + 0.1) * (nn + 0.1);
        // Count neighbors of atom 0 within just over the nearest-neighbor
        // distance: the defining property of the benchmark (4 neighbors).
        let mut count = 0;
        for j in 1..atoms.n_total() {
            if b.distance_sq(atoms.x[0], atoms.x[j]) < cutoff_sq {
                count += 1;
            }
        }
        assert_eq!(count, 4);
    }

    #[test]
    fn second_shell_is_outside_tersoff_cutoff() {
        let a = crate::units::lattice_constant::SI;
        assert!(diamond_nearest_neighbor(a) < 3.0);
        assert!(diamond_second_neighbor(a) > 3.2);
    }

    #[test]
    fn zincblende_alternates_species() {
        let (_, atoms) = Lattice::silicon_carbide([1, 1, 1]).build();
        let n0 = atoms.type_.iter().filter(|&&t| t == 0).count();
        let n1 = atoms.type_.iter().filter(|&&t| t == 1).count();
        assert_eq!(n0, 4);
        assert_eq!(n1, 4);
    }

    #[test]
    fn perturbation_is_deterministic_in_seed() {
        let (_, a1) = Lattice::silicon([2, 2, 2]).build_perturbed(0.05, 7);
        let (_, a2) = Lattice::silicon([2, 2, 2]).build_perturbed(0.05, 7);
        let (_, a3) = Lattice::silicon([2, 2, 2]).build_perturbed(0.05, 8);
        assert_eq!(a1.x, a2.x);
        assert_ne!(a1.x, a3.x);
    }

    #[test]
    fn silicon_with_atoms_reaches_requested_size() {
        for &n in &[100usize, 512, 4096, 32_000] {
            let l = Lattice::silicon_with_atoms(n);
            assert!(l.n_atoms() >= n, "requested {n}, got {}", l.n_atoms());
            // No more than ~8x overshoot even in the worst case.
            assert!(l.n_atoms() <= n * 8 + 64);
        }
    }
}
