//! Crystal-lattice builders.
//!
//! The paper's benchmark is "a standard LAMMPS benchmark for the simulation
//! of Silicon atoms ... laid out in a regular lattice so that each of them
//! has exactly four nearest neighbors" — the diamond cubic structure. This
//! module generates that lattice (plus the two-species zincblende variant
//! used by the SiC example) at any multiple of the conventional unit cell,
//! optionally with a small random perturbation so that forces are non-zero.

use crate::atom::AtomData;
use crate::simbox::SimBox;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Fractional coordinates of the 8 atoms in the conventional diamond-cubic
/// unit cell. The first four sites form the FCC sub-lattice, the second four
/// are displaced by (¼, ¼, ¼).
const DIAMOND_BASIS: [[f64; 3]; 8] = [
    [0.00, 0.00, 0.00],
    [0.00, 0.50, 0.50],
    [0.50, 0.00, 0.50],
    [0.50, 0.50, 0.00],
    [0.25, 0.25, 0.25],
    [0.25, 0.75, 0.75],
    [0.75, 0.25, 0.75],
    [0.75, 0.75, 0.25],
];

/// Fractional coordinates of the 4 atoms in the orthorhombic cell of the
/// diamond structure rotated so that the cubic [110] direction lies along x.
/// Cell vectors are `(a/√2, a/√2, a)`: half the conventional-cell volume, so
/// 4 atoms. The first two sites are the FCC sub-lattice, the second two the
/// displaced sub-lattice — the cell used by the C44 shear probe, where a
/// uniaxial x-strain of this cell is a [110] strain of the cubic crystal.
const DIAMOND110_BASIS: [[f64; 3]; 4] = [
    [0.00, 0.00, 0.00],
    [0.50, 0.50, 0.50],
    [0.50, 0.00, 0.25],
    [0.00, 0.50, 0.75],
];

/// Fractional coordinates of the 8 atoms in the orthorhombic AB-stacked
/// graphite cell. With bond length `d` the cell is `(3d, √3·d, 2·h)` where
/// `h` is [`GRAPHITE_INTERLAYER`]: two honeycomb layers of 4 atoms, the B
/// layer shifted by one bond length along x (Bernal stacking).
const GRAPHITE_AB_BASIS: [[f64; 3]; 8] = [
    // layer A, z = 0
    [0.0, 0.0, 0.0],
    [1.0 / 3.0, 0.0, 0.0],
    [0.5, 0.5, 0.0],
    [5.0 / 6.0, 0.5, 0.0],
    // layer B, z = h, shifted by +1/3 in fractional x
    [1.0 / 3.0, 0.0, 0.5],
    [2.0 / 3.0, 0.0, 0.5],
    [5.0 / 6.0, 0.5, 0.5],
    [1.0 / 6.0, 0.5, 0.5],
];

/// Interlayer spacing of AB graphite in Å. Well outside the Tersoff carbon
/// cutoff (2.1 Å), so the layers are non-interacting under this potential —
/// exactly the anisotropy the graphite stress scenario probes.
pub const GRAPHITE_INTERLAYER: f64 = 3.35;

/// Which crystal structure to generate.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LatticeKind {
    /// Diamond cubic, single species (silicon benchmark).
    Diamond,
    /// Zincblende: diamond with the two sub-lattices occupied by different
    /// species (SiC example). Type 0 on the FCC sub-lattice, type 1 on the
    /// displaced sub-lattice.
    Zincblende,
    /// Diamond cubic in the rotated orthorhombic cell with cubic [110]
    /// along x (4 atoms per cell, cell `(a/√2, a/√2, a)`). Single species.
    Diamond110,
    /// AB (Bernal) stacked graphite: `a` is the in-plane bond length, the
    /// interlayer spacing is [`GRAPHITE_INTERLAYER`]. 8 atoms per cell,
    /// cell `(3a, √3·a, 2·interlayer)`. Single species.
    GraphiteAB,
}

/// Random substitutional disorder on the lattice: each site independently
/// becomes type 1 with probability `fraction` (deterministic in `seed`, and
/// independent of the positional perturbation stream, so the same geometry
/// hosts the ordered and the alloyed crystal).
#[derive(Copy, Clone, Debug)]
pub struct SpeciesMix {
    /// Probability that a site is occupied by type 1.
    pub fraction: f64,
    /// Seed of the species RNG stream.
    pub seed: u64,
}

/// A lattice description: structure, lattice constant and cell counts.
#[derive(Copy, Clone, Debug)]
pub struct Lattice {
    /// Crystal structure.
    pub kind: LatticeKind,
    /// Conventional-cell lattice constant in Å (bond length for
    /// [`LatticeKind::GraphiteAB`]).
    pub a: f64,
    /// Number of conventional cells in x, y, z.
    pub cells: [usize; 3],
    /// Random substitutional disorder (the SiGe alloy), applied after the
    /// structural type assignment.
    pub species_mix: Option<SpeciesMix>,
}

impl Lattice {
    /// Diamond-cubic silicon with `nx × ny × nz` cells.
    pub fn silicon(cells: [usize; 3]) -> Self {
        Lattice {
            kind: LatticeKind::Diamond,
            a: crate::units::lattice_constant::SI,
            cells,
            species_mix: None,
        }
    }

    /// Diamond-cubic carbon (the diamond crystal proper).
    pub fn carbon_diamond(cells: [usize; 3]) -> Self {
        Lattice {
            kind: LatticeKind::Diamond,
            a: crate::units::lattice_constant::C,
            cells,
            species_mix: None,
        }
    }

    /// Diamond-cubic germanium.
    pub fn germanium(cells: [usize; 3]) -> Self {
        Lattice {
            kind: LatticeKind::Diamond,
            a: crate::units::lattice_constant::GE,
            cells,
            species_mix: None,
        }
    }

    /// Si₀.₅Ge₀.₅ random alloy on a diamond lattice at the Vegard-average
    /// lattice constant: type 0 = Si, type 1 = Ge, species assigned by an
    /// RNG stream independent of the positional perturbation.
    pub fn silicon_germanium(cells: [usize; 3], seed: u64) -> Self {
        Lattice {
            kind: LatticeKind::Diamond,
            a: crate::units::lattice_constant::SIGE,
            cells,
            species_mix: Some(SpeciesMix {
                fraction: 0.5,
                seed,
            }),
        }
    }

    /// The diamond structure in its rotated [110]-along-x orthorhombic cell
    /// (4 atoms per cell) — the geometry the elastic-constant driver strains
    /// to measure C44.
    pub fn diamond_110(a: f64, cells: [usize; 3]) -> Self {
        Lattice {
            kind: LatticeKind::Diamond110,
            a,
            cells,
            species_mix: None,
        }
    }

    /// AB-stacked graphite with in-plane bond length `bond` Å.
    pub fn graphite_ab(bond: f64, cells: [usize; 3]) -> Self {
        Lattice {
            kind: LatticeKind::GraphiteAB,
            a: bond,
            cells,
            species_mix: None,
        }
    }

    /// The same lattice with a different lattice constant — how the elastic
    /// driver scans the cohesive-energy curve.
    pub fn with_a(mut self, a: f64) -> Self {
        self.a = a;
        self
    }

    /// A silicon lattice sized to contain *at least* `n_atoms` atoms, keeping
    /// the cell count as cubic as possible — convenient for "32 000 atom"
    /// style benchmark specifications.
    pub fn silicon_with_atoms(n_atoms: usize) -> Self {
        let cells_needed = n_atoms.div_ceil(8).max(1);
        let side = (cells_needed as f64).cbrt().ceil() as usize;
        let mut cells = [side.max(1); 3];
        // Shrink dimensions greedily while the lattice still holds enough
        // atoms, to avoid overshooting by nearly a factor of two.
        for d in (0..3).rev() {
            while cells[d] > 1 {
                let mut trial = cells;
                trial[d] -= 1;
                if trial[0] * trial[1] * trial[2] * 8 >= n_atoms {
                    cells = trial;
                } else {
                    break;
                }
            }
        }
        Lattice {
            kind: LatticeKind::Diamond,
            a: crate::units::lattice_constant::SI,
            cells,
            species_mix: None,
        }
    }

    /// Zincblende SiC with `nx × ny × nz` cells.
    pub fn silicon_carbide(cells: [usize; 3]) -> Self {
        Lattice {
            kind: LatticeKind::Zincblende,
            a: crate::units::lattice_constant::SIC,
            cells,
            species_mix: None,
        }
    }

    /// The fractional basis of one conventional cell of this structure.
    fn basis(&self) -> &'static [[f64; 3]] {
        match self.kind {
            LatticeKind::Diamond | LatticeKind::Zincblende => &DIAMOND_BASIS,
            LatticeKind::Diamond110 => &DIAMOND110_BASIS,
            LatticeKind::GraphiteAB => &GRAPHITE_AB_BASIS,
        }
    }

    /// Edge lengths of one conventional cell in Å.
    pub fn cell_lengths(&self) -> [f64; 3] {
        match self.kind {
            LatticeKind::Diamond | LatticeKind::Zincblende => [self.a; 3],
            LatticeKind::Diamond110 => {
                let s = self.a / 2.0_f64.sqrt();
                [s, s, self.a]
            }
            LatticeKind::GraphiteAB => [
                3.0 * self.a,
                3.0_f64.sqrt() * self.a,
                2.0 * GRAPHITE_INTERLAYER,
            ],
        }
    }

    /// Atoms per conventional cell of this structure.
    pub fn atoms_per_cell(&self) -> usize {
        self.basis().len()
    }

    /// Number of atoms this lattice generates.
    pub fn n_atoms(&self) -> usize {
        self.atoms_per_cell() * self.cells[0] * self.cells[1] * self.cells[2]
    }

    /// The periodic box that exactly contains the lattice.
    pub fn simbox(&self) -> SimBox {
        let cell = self.cell_lengths();
        SimBox::orthogonal(
            [0.0; 3],
            [
                cell[0] * self.cells[0] as f64,
                cell[1] * self.cells[1] as f64,
                cell[2] * self.cells[2] as f64,
            ],
        )
    }

    /// Generate atom data on the perfect lattice.
    pub fn build(&self) -> (SimBox, AtomData) {
        self.build_perturbed(0.0, 0)
    }

    /// Generate atom data with every coordinate displaced by a uniform random
    /// amount in `[-amplitude, amplitude]` Å (deterministic in `seed`).
    ///
    /// A small perturbation (≈0.05 Å) is what the benchmarks use so that
    /// forces are non-trivial from step 0.
    pub fn build_perturbed(&self, amplitude: f64, seed: u64) -> (SimBox, AtomData) {
        let sim_box = self.simbox();
        let cell = self.cell_lengths();
        let basis = self.basis();
        let mut atoms = AtomData::with_capacity(self.n_atoms());
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // The species stream is separate from the perturbation stream (and
        // decorrelated from it even for equal seed values), so an alloy and
        // its ordered counterpart share identical geometry.
        let mut mix_rng = self
            .species_mix
            .map(|mix| ChaCha8Rng::seed_from_u64(mix.seed ^ 0x9e37_79b9_7f4a_7c15));
        let mut id = 1u64;
        for cx in 0..self.cells[0] {
            for cy in 0..self.cells[1] {
                for cz in 0..self.cells[2] {
                    for (site, frac) in basis.iter().enumerate() {
                        let mut pos = [
                            (cx as f64 + frac[0]) * cell[0],
                            (cy as f64 + frac[1]) * cell[1],
                            (cz as f64 + frac[2]) * cell[2],
                        ];
                        if amplitude > 0.0 {
                            for p in pos.iter_mut() {
                                *p += rng.gen_range(-amplitude..amplitude);
                            }
                        }
                        let pos = sim_box.wrap(pos);
                        let mut type_ = match self.kind {
                            LatticeKind::Zincblende => usize::from(site >= 4),
                            _ => 0,
                        };
                        if let (Some(mix_rng), Some(mix)) =
                            (mix_rng.as_mut(), self.species_mix.as_ref())
                        {
                            type_ = usize::from(mix_rng.gen_bool(mix.fraction));
                        }
                        atoms.push_local(pos, [0.0; 3], type_, id);
                        id += 1;
                    }
                }
            }
        }
        (sim_box, atoms)
    }
}

/// Nearest-neighbor distance of a diamond lattice with lattice constant `a`:
/// `a·√3/4` (≈2.35 Å for silicon).
pub fn diamond_nearest_neighbor(a: f64) -> f64 {
    a * 3.0_f64.sqrt() / 4.0
}

/// Second-neighbor distance of a diamond lattice: `a/√2` (≈3.84 Å for Si).
pub fn diamond_second_neighbor(a: f64) -> f64 {
    a / 2.0_f64.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atom_count_is_eight_per_cell() {
        let l = Lattice::silicon([2, 3, 4]);
        assert_eq!(l.n_atoms(), 8 * 24);
        let (_, atoms) = l.build();
        assert_eq!(atoms.n_total(), l.n_atoms());
        assert_eq!(atoms.n_local, l.n_atoms());
    }

    #[test]
    fn box_matches_cell_count() {
        let l = Lattice::silicon([2, 2, 2]);
        let b = l.simbox();
        let a = crate::units::lattice_constant::SI;
        assert!((b.lengths()[0] - 2.0 * a).abs() < 1e-12);
        assert!((b.volume() - (2.0 * a).powi(3)).abs() < 1e-9);
    }

    #[test]
    fn all_atoms_inside_box_and_unique_ids() {
        let (b, atoms) = Lattice::silicon([3, 2, 2]).build_perturbed(0.05, 42);
        assert!(atoms.x.iter().all(|&p| b.contains(p)));
        let mut ids = atoms.id.clone();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), atoms.n_total());
    }

    #[test]
    fn perfect_silicon_has_four_nearest_neighbors() {
        let (b, atoms) = Lattice::silicon([3, 3, 3]).build();
        let nn = diamond_nearest_neighbor(crate::units::lattice_constant::SI);
        let cutoff_sq = (nn + 0.1) * (nn + 0.1);
        // Count neighbors of atom 0 within just over the nearest-neighbor
        // distance: the defining property of the benchmark (4 neighbors).
        let mut count = 0;
        for j in 1..atoms.n_total() {
            if b.distance_sq(atoms.x[0], atoms.x[j]) < cutoff_sq {
                count += 1;
            }
        }
        assert_eq!(count, 4);
    }

    #[test]
    fn second_shell_is_outside_tersoff_cutoff() {
        let a = crate::units::lattice_constant::SI;
        assert!(diamond_nearest_neighbor(a) < 3.0);
        assert!(diamond_second_neighbor(a) > 3.2);
    }

    #[test]
    fn zincblende_alternates_species() {
        let (_, atoms) = Lattice::silicon_carbide([1, 1, 1]).build();
        let n0 = atoms.type_.iter().filter(|&&t| t == 0).count();
        let n1 = atoms.type_.iter().filter(|&&t| t == 1).count();
        assert_eq!(n0, 4);
        assert_eq!(n1, 4);
    }

    #[test]
    fn perturbation_is_deterministic_in_seed() {
        let (_, a1) = Lattice::silicon([2, 2, 2]).build_perturbed(0.05, 7);
        let (_, a2) = Lattice::silicon([2, 2, 2]).build_perturbed(0.05, 7);
        let (_, a3) = Lattice::silicon([2, 2, 2]).build_perturbed(0.05, 8);
        assert_eq!(a1.x, a2.x);
        assert_ne!(a1.x, a3.x);
    }

    #[test]
    fn diamond_110_is_the_same_crystal() {
        // The rotated cell must reproduce the diamond environment: 4 nearest
        // neighbors at a·√3/4, same density as the cubic cell.
        let a = crate::units::lattice_constant::SI;
        let l = Lattice::diamond_110(a, [3, 3, 2]);
        assert_eq!(l.n_atoms(), 4 * 18);
        let (b, atoms) = l.build();
        let nn = diamond_nearest_neighbor(a);
        let cubic_density = 8.0 / a.powi(3);
        assert!((atoms.n_total() as f64 / b.volume() - cubic_density).abs() < 1e-12);
        for i in 0..atoms.n_total() {
            let mut count = 0;
            for j in 0..atoms.n_total() {
                if i != j && b.distance_sq(atoms.x[i], atoms.x[j]) < (nn + 0.1) * (nn + 0.1) {
                    count += 1;
                }
            }
            assert_eq!(count, 4, "atom {i} has {count} nearest neighbors");
        }
    }

    #[test]
    fn graphite_layers_are_honeycomb_and_separated() {
        let d = 1.42;
        let l = Lattice::graphite_ab(d, [2, 2, 1]);
        assert_eq!(l.n_atoms(), 8 * 4);
        let (b, atoms) = l.build();
        // Every atom has exactly 3 in-plane neighbors at the bond length and
        // no neighbor closer than the interlayer spacing out of plane.
        for i in 0..atoms.n_total() {
            let mut bonds = 0;
            for j in 0..atoms.n_total() {
                if i == j {
                    continue;
                }
                let del = b.min_image(atoms.x[i], atoms.x[j]);
                let r = (del[0] * del[0] + del[1] * del[1] + del[2] * del[2]).sqrt();
                if r < d + 0.1 {
                    bonds += 1;
                    assert!(del[2].abs() < 1e-9, "bond {i}-{j} leaves the plane");
                }
            }
            assert_eq!(bonds, 3, "atom {i} has {bonds} bonds");
        }
        let lengths = b.lengths();
        assert!((lengths[2] - 2.0 * GRAPHITE_INTERLAYER).abs() < 1e-12);
    }

    #[test]
    fn alloy_mixes_species_without_moving_atoms() {
        let cells = [3, 3, 3];
        let alloy = Lattice::silicon_germanium(cells, 11);
        let ordered = Lattice {
            species_mix: None,
            ..alloy
        };
        let (_, a1) = alloy.build_perturbed(0.02, 5);
        let (_, a2) = ordered.build_perturbed(0.02, 5);
        assert_eq!(a1.x, a2.x, "species mix must not perturb the geometry");
        assert!(a2.type_.iter().all(|&t| t == 0));
        let n_ge = a1.type_.iter().filter(|&&t| t == 1).count();
        let n = a1.type_.len();
        // Binomial(216, 0.5): anything outside ~[64, 152] signals a broken RNG.
        assert!(n_ge > n / 4 && n_ge < 3 * n / 4, "n_ge = {n_ge} of {n}");
        // Deterministic in the species seed, different across seeds.
        let (_, a3) = Lattice::silicon_germanium(cells, 11).build_perturbed(0.02, 5);
        assert_eq!(a1.type_, a3.type_);
        let (_, a4) = Lattice::silicon_germanium(cells, 12).build_perturbed(0.02, 5);
        assert_ne!(a1.type_, a4.type_);
    }

    #[test]
    fn silicon_with_atoms_reaches_requested_size() {
        for &n in &[100usize, 512, 4096, 32_000] {
            let l = Lattice::silicon_with_atoms(n);
            assert!(l.n_atoms() >= n, "requested {n}, got {}", l.n_atoms());
            // No more than ~8x overshoot even in the worst case.
            assert!(l.n_atoms() <= n * 8 + 64);
        }
    }
}
