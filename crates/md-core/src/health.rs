//! Numerical health guards: catch divergence early instead of letting a
//! blown-up trajectory run silently to completion.
//!
//! [`HealthGuard`] is an [`Observer`] that scans positions, velocities and
//! forces for non-finite values at a configurable cadence, checks optional
//! temperature and per-interval displacement bounds, and reports the first
//! violation through the observer [`fault`](Observer::fault) channel. The
//! simulation loop polls that channel after every step and aborts the run
//! with a typed [`RunError::Diverged`](crate::simulation::RunError), so a
//! NaN force or an exploding thermostat becomes a recoverable, reportable
//! outcome instead of garbage output.
//!
//! Every check reads only deterministic simulation state (which is bitwise
//! identical across thread counts and SIMD backends — see
//! `crate::runtime`), so the abort step and reason are identical for every
//! execution configuration. That determinism is load-bearing: it is what
//! lets a batch driver retry or compare faulted variants meaningfully.

use crate::observer::{Observer, RunFault, StepContext};
use crate::thermo::ThermoState;
use std::any::Any;

/// What [`HealthGuard`] checks and how often.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HealthSettings {
    /// Check cadence in steps (`0` disables the per-step scans; the
    /// thermo-sample checks still run). Default: every step.
    pub every: u64,
    /// Abort when the sampled temperature exceeds this bound (K).
    pub max_temperature: Option<f64>,
    /// Abort when any atom moves further than this (Å, minimum image)
    /// between two consecutive checks.
    pub max_displacement: Option<f64>,
}

impl Default for HealthSettings {
    fn default() -> Self {
        HealthSettings {
            every: 1,
            max_temperature: None,
            max_displacement: None,
        }
    }
}

/// Observer that aborts a run on the first sign of numerical divergence.
///
/// ```
/// use md_core::prelude::*;
///
/// let (sim_box, atoms) = Lattice::silicon([2, 2, 2]).build_perturbed(0.02, 3);
/// let lj = LennardJones::new(0.1, 2.0, 4.0);
/// let mut sim = Simulation::builder(atoms, sim_box, lj)
///     .masses(vec![units::mass::SI])
///     .temperature(300.0, 11)
///     .observe(HealthGuard::new(HealthSettings {
///         every: 5,
///         max_temperature: Some(10_000.0),
///         max_displacement: None,
///     }))
///     .build()
///     .unwrap();
/// assert!(sim.try_run(20).is_ok());
/// ```
#[derive(Debug, Default)]
pub struct HealthGuard {
    settings: HealthSettings,
    fault: Option<RunFault>,
    /// Positions at the previous displacement check (lazily sized once;
    /// steady-state checks reuse the storage and do not allocate).
    prev_x: Vec<[f64; 3]>,
    prev_step: u64,
    checks: u64,
}

impl HealthGuard {
    /// A guard with the given settings.
    pub fn new(settings: HealthSettings) -> Self {
        HealthGuard {
            settings,
            ..HealthGuard::default()
        }
    }

    /// The guard's settings.
    pub fn settings(&self) -> &HealthSettings {
        &self.settings
    }

    /// Number of per-step scans performed so far.
    pub fn checks_performed(&self) -> u64 {
        self.checks
    }

    /// The first recorded violation, if any.
    pub fn violation(&self) -> Option<&RunFault> {
        self.fault.as_ref()
    }

    fn scan(&mut self, ctx: &StepContext<'_>) -> Option<RunFault> {
        let n = ctx.atoms.n_local;
        let arrays: [(&str, &[[f64; 3]]); 3] = [
            ("position", &ctx.atoms.x),
            ("velocity", &ctx.atoms.v),
            ("force", &ctx.atoms.f),
        ];
        for (name, array) in arrays {
            for (i, value) in array.iter().take(n).enumerate() {
                if value.iter().any(|c| !c.is_finite()) {
                    return Some(RunFault {
                        step: ctx.step,
                        reason: format!(
                            "non-finite {name} at atom {i}: [{}, {}, {}]",
                            value[0], value[1], value[2]
                        ),
                    });
                }
            }
        }

        if let Some(bound) = self.settings.max_displacement {
            if self.prev_x.len() == n {
                for i in 0..n {
                    let d = ctx.sim_box.min_image(self.prev_x[i], ctx.atoms.x[i]);
                    let dist = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
                    if dist > bound {
                        return Some(RunFault {
                            step: ctx.step,
                            reason: format!(
                                "atom {i} moved {dist:.6} Å between steps {} and {} \
                                 (bound {bound} Å)",
                                self.prev_step, ctx.step
                            ),
                        });
                    }
                }
            }
            self.prev_x.clear();
            self.prev_x.extend_from_slice(&ctx.atoms.x[..n]);
            self.prev_step = ctx.step;
        }
        None
    }
}

impl Observer for HealthGuard {
    fn on_step(&mut self, ctx: &StepContext<'_>) {
        if self.fault.is_some()
            || self.settings.every == 0
            || !ctx.step.is_multiple_of(self.settings.every)
        {
            return;
        }
        self.checks += 1;
        self.fault = self.scan(ctx);
    }

    fn on_thermo(&mut self, state: &ThermoState) {
        if self.fault.is_some() {
            return;
        }
        if !state.total.is_finite() || !state.temperature.is_finite() {
            self.fault = Some(RunFault {
                step: state.step,
                reason: format!(
                    "non-finite thermo sample: T = {} K, E = {} eV",
                    state.temperature, state.total
                ),
            });
            return;
        }
        if let Some(bound) = self.settings.max_temperature {
            if state.temperature > bound {
                self.fault = Some(RunFault {
                    step: state.step,
                    reason: format!(
                        "temperature {:.3} K exceeds bound {bound} K",
                        state.temperature
                    ),
                });
            }
        }
    }

    fn fault(&self) -> Option<RunFault> {
        self.fault.clone()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::Lattice;
    use crate::pair_lj::LennardJones;
    use crate::simulation::{RunError, Simulation};
    use crate::units;

    fn guarded_sim(settings: HealthSettings, temperature: f64) -> Simulation<LennardJones> {
        let (sim_box, atoms) = Lattice::silicon([2, 2, 2]).build_perturbed(0.02, 3);
        let lj = LennardJones::new(0.1, 2.0, 4.0);
        Simulation::builder(atoms, sim_box, lj)
            .masses(vec![units::mass::SI])
            .temperature(temperature, 11)
            .thermo_every(2)
            .observe(HealthGuard::new(settings))
            .build()
            .unwrap()
    }

    #[test]
    fn healthy_run_passes_all_checks() {
        let mut sim = guarded_sim(
            HealthSettings {
                every: 1,
                max_temperature: Some(10_000.0),
                max_displacement: Some(5.0),
            },
            300.0,
        );
        let report = sim.try_run(20).expect("healthy run");
        assert!(report.status.is_ok());
        let guard = sim.observer::<HealthGuard>().unwrap();
        assert_eq!(guard.checks_performed(), 20);
        assert!(guard.violation().is_none());
    }

    #[test]
    fn nan_velocity_aborts_with_diverged() {
        let mut sim = guarded_sim(HealthSettings::default(), 300.0);
        sim.atoms.v[3][1] = f64::NAN;
        match sim.try_run(10) {
            Err(RunError::Diverged {
                step,
                reason,
                report,
            }) => {
                assert_eq!(step, 1, "detected on the first checked step");
                assert!(reason.contains("non-finite"), "reason: {reason}");
                assert!(!report.status.is_ok());
                assert_eq!(report.steps, 1);
            }
            other => panic!("expected Diverged, got {other:?}"),
        }
    }

    #[test]
    fn temperature_bound_aborts() {
        let mut sim = guarded_sim(
            HealthSettings {
                every: 1,
                max_temperature: Some(100.0),
                max_displacement: None,
            },
            5_000.0,
        );
        let err = sim.try_run(10).unwrap_err();
        match err {
            RunError::Diverged { reason, .. } => {
                assert!(reason.contains("exceeds bound"), "reason: {reason}")
            }
            other => panic!("expected Diverged, got {other:?}"),
        }
    }

    #[test]
    fn displacement_bound_aborts() {
        let mut sim = guarded_sim(
            HealthSettings {
                every: 1,
                max_temperature: None,
                max_displacement: Some(1e-6),
            },
            2_000.0,
        );
        let err = sim.try_run(10).unwrap_err();
        match err {
            RunError::Diverged { reason, .. } => {
                assert!(reason.contains("moved"), "reason: {reason}")
            }
            other => panic!("expected Diverged, got {other:?}"),
        }
    }

    #[test]
    fn abort_step_and_reason_are_identical_across_thread_counts() {
        let run = |threads: usize| {
            let (sim_box, atoms) = Lattice::silicon([2, 2, 2]).build_perturbed(0.02, 3);
            let lj = LennardJones::new(0.1, 2.0, 4.0);
            let mut sim = Simulation::builder(atoms, sim_box, lj)
                .masses(vec![units::mass::SI])
                .temperature(3_000.0, 11)
                .threads(threads)
                .observe(HealthGuard::new(HealthSettings {
                    every: 1,
                    max_temperature: None,
                    max_displacement: Some(0.02),
                }))
                .build()
                .unwrap();
            match sim.try_run(100) {
                Err(RunError::Diverged { step, reason, .. }) => (step, reason),
                other => panic!("expected Diverged, got {other:?}"),
            }
        };
        let serial = run(1);
        for threads in [2, 4] {
            assert_eq!(run(threads), serial, "threads = {threads}");
        }
    }
}
