//! Orthogonal periodic simulation box.
//!
//! The silicon benchmarks of the paper use a fully periodic orthorhombic box.
//! [`SimBox`] provides wrapping of coordinates back into the box, the
//! minimum-image displacement used by the naive neighbor builder and the
//! tests, and the geometric queries (volume, per-dimension lengths) needed by
//! the binning code and the pressure computation.

use serde::{Deserialize, Serialize};

/// An orthogonal simulation box `[lo, hi)` in each dimension with periodic
/// boundary conditions.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimBox {
    /// Lower bounds of the box in x, y, z (Å).
    pub lo: [f64; 3],
    /// Upper bounds of the box in x, y, z (Å).
    pub hi: [f64; 3],
    /// Periodicity flags per dimension (the benchmarks are fully periodic,
    /// but the decomposition tests also exercise non-periodic dimensions).
    pub periodic: [bool; 3],
}

impl SimBox {
    /// A fully periodic box spanning `[0, l)` in each dimension.
    pub fn cubic(l: f64) -> Self {
        Self::orthogonal([0.0; 3], [l; 3])
    }

    /// A fully periodic box with the given bounds.
    pub fn orthogonal(lo: [f64; 3], hi: [f64; 3]) -> Self {
        assert!(
            (0..3).all(|d| hi[d] > lo[d]),
            "box upper bounds must exceed lower bounds: lo={lo:?} hi={hi:?}"
        );
        SimBox {
            lo,
            hi,
            periodic: [true; 3],
        }
    }

    /// Edge lengths in each dimension.
    #[inline]
    pub fn lengths(&self) -> [f64; 3] {
        [
            self.hi[0] - self.lo[0],
            self.hi[1] - self.lo[1],
            self.hi[2] - self.lo[2],
        ]
    }

    /// Box volume in Å³.
    #[inline]
    pub fn volume(&self) -> f64 {
        let l = self.lengths();
        l[0] * l[1] * l[2]
    }

    /// Wrap a position into the primary cell along every periodic dimension.
    #[inline]
    pub fn wrap(&self, mut x: [f64; 3]) -> [f64; 3] {
        let l = self.lengths();
        for d in 0..3 {
            if !self.periodic[d] {
                continue;
            }
            // Positions never drift more than a couple of box lengths between
            // calls, so a loop is both exact and fast.
            while x[d] >= self.hi[d] {
                x[d] -= l[d];
            }
            while x[d] < self.lo[d] {
                x[d] += l[d];
            }
        }
        x
    }

    /// Minimum-image displacement `b - a`.
    #[inline]
    pub fn min_image(&self, a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
        let l = self.lengths();
        let mut d = [b[0] - a[0], b[1] - a[1], b[2] - a[2]];
        for k in 0..3 {
            if self.periodic[k] {
                if d[k] > 0.5 * l[k] {
                    d[k] -= l[k];
                } else if d[k] < -0.5 * l[k] {
                    d[k] += l[k];
                }
            }
        }
        d
    }

    /// Squared minimum-image distance between two points.
    #[inline]
    pub fn distance_sq(&self, a: [f64; 3], b: [f64; 3]) -> f64 {
        let d = self.min_image(a, b);
        d[0] * d[0] + d[1] * d[1] + d[2] * d[2]
    }

    /// True if `x` lies inside the box (half-open interval per dimension).
    #[inline]
    pub fn contains(&self, x: [f64; 3]) -> bool {
        (0..3).all(|d| x[d] >= self.lo[d] && x[d] < self.hi[d])
    }

    /// Split the box into an `nx × ny × nz` grid of equal sub-boxes; returns
    /// the sub-box with grid coordinates `(ix, iy, iz)`. Sub-boxes are
    /// non-periodic views used by the domain decomposition; periodicity of
    /// the parent box is handled by the ghost exchange.
    pub fn subdomain(&self, grid: [usize; 3], coord: [usize; 3]) -> SimBox {
        let l = self.lengths();
        let mut lo = [0.0; 3];
        let mut hi = [0.0; 3];
        for d in 0..3 {
            assert!(
                grid[d] >= 1 && coord[d] < grid[d],
                "invalid decomposition grid"
            );
            let step = l[d] / grid[d] as f64;
            lo[d] = self.lo[d] + coord[d] as f64 * step;
            hi[d] = if coord[d] + 1 == grid[d] {
                self.hi[d]
            } else {
                self.lo[d] + (coord[d] + 1) as f64 * step
            };
        }
        SimBox {
            lo,
            hi,
            periodic: [false; 3],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_volume() {
        let b = SimBox::orthogonal([1.0, 2.0, 3.0], [2.0, 5.0, 10.0]);
        assert_eq!(b.lengths(), [1.0, 3.0, 7.0]);
        assert_eq!(b.volume(), 21.0);
        assert_eq!(SimBox::cubic(3.0).volume(), 27.0);
    }

    #[test]
    #[should_panic(expected = "upper bounds must exceed")]
    fn degenerate_box_panics() {
        SimBox::orthogonal([0.0; 3], [1.0, 0.0, 1.0]);
    }

    #[test]
    fn wrap_brings_positions_inside() {
        let b = SimBox::cubic(10.0);
        assert_eq!(b.wrap([11.0, -0.5, 5.0]), [1.0, 9.5, 5.0]);
        assert_eq!(b.wrap([10.0, 0.0, 29.0]), [0.0, 0.0, 9.0]);
        assert!(b.contains(b.wrap([123.4, -77.0, 5.0])));
    }

    #[test]
    fn wrap_ignores_nonperiodic_dims() {
        let mut b = SimBox::cubic(10.0);
        b.periodic = [true, false, true];
        assert_eq!(b.wrap([11.0, 11.0, 11.0]), [1.0, 11.0, 1.0]);
    }

    #[test]
    fn min_image_prefers_nearest_copy() {
        let b = SimBox::cubic(10.0);
        // Straight-line distance 9, periodic image distance 1.
        let d = b.min_image([0.5, 0.0, 0.0], [9.5, 0.0, 0.0]);
        assert!((d[0] - -1.0).abs() < 1e-12);
        assert_eq!(b.distance_sq([0.5, 0.0, 0.0], [9.5, 0.0, 0.0]), 1.0);
        // Interior pair is unaffected.
        let d = b.min_image([2.0, 2.0, 2.0], [3.0, 4.0, 5.0]);
        assert_eq!(d, [1.0, 2.0, 3.0]);
    }

    #[test]
    fn min_image_is_antisymmetric() {
        let b = SimBox::cubic(7.0);
        let a = [0.2, 6.9, 3.0];
        let c = [6.8, 0.1, 3.5];
        let dab = b.min_image(a, c);
        let dba = b.min_image(c, a);
        for k in 0..3 {
            assert!((dab[k] + dba[k]).abs() < 1e-12);
        }
    }

    #[test]
    fn subdomain_tiles_the_box() {
        let b = SimBox::cubic(12.0);
        let grid = [2, 3, 1];
        let mut total = 0.0;
        for ix in 0..2 {
            for iy in 0..3 {
                let sd = b.subdomain(grid, [ix, iy, 0]);
                total += sd.volume();
                assert!(!sd.periodic.iter().any(|&p| p));
            }
        }
        assert!((total - b.volume()).abs() < 1e-9);
        // Last subdomain's upper bound is exactly the parent's.
        let last = b.subdomain(grid, [1, 2, 0]);
        assert_eq!(last.hi, b.hi);
    }

    #[test]
    #[should_panic(expected = "invalid decomposition grid")]
    fn subdomain_rejects_out_of_range_coord() {
        SimBox::cubic(1.0).subdomain([2, 2, 2], [2, 0, 0]);
    }
}
