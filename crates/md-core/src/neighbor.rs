//! Neighbor lists.
//!
//! The Tersoff potential needs a *full* neighbor list (every ordered pair
//! appears in the list of both partners) built with an extended cutoff
//! `r_C + skin` — the paper calls the extended list `S_i` and the true
//! interaction list `N_i` (Sec. III). The list is rebuilt only when some atom
//! has moved more than half the skin distance since the last build, the
//! standard LAMMPS heuristic.
//!
//! Two builders are provided:
//!
//! * [`NeighborList::build_binned`] — O(N) cell/bin construction, the one the
//!   simulation driver uses;
//! * [`NeighborList::build_naive`] — O(N²) reference used by tests to verify
//!   the binned builder.

use crate::atom::AtomData;
use crate::runtime::{fixed_chunk_count, DisjointSlice, ParallelRuntime};
use crate::simbox::SimBox;
use serde::{Deserialize, Serialize};

/// Parameters controlling neighbor-list construction.
#[derive(Copy, Clone, Debug, Serialize, Deserialize)]
pub struct NeighborSettings {
    /// Interaction cutoff (Å) — the largest cutoff of the potential.
    pub cutoff: f64,
    /// Skin distance (Å) added to the cutoff when building the list.
    pub skin: f64,
}

impl Default for NeighborSettings {
    fn default() -> Self {
        NeighborSettings {
            cutoff: 1.0,
            skin: 0.0,
        }
    }
}

impl NeighborSettings {
    /// Construct settings, validating the inputs.
    pub fn new(cutoff: f64, skin: f64) -> Self {
        assert!(cutoff > 0.0, "cutoff must be positive");
        assert!(skin >= 0.0, "skin must be non-negative");
        NeighborSettings { cutoff, skin }
    }

    /// The build cutoff `cutoff + skin`.
    #[inline]
    pub fn build_cutoff(&self) -> f64 {
        self.cutoff + self.skin
    }
}

/// A full neighbor list in compressed-row storage.
///
/// The list owns its binning scratch, so [`NeighborList::rebuild`] reuses
/// every buffer from the previous build: once a trajectory reaches steady
/// state (atom count and neighbor counts stable), rebuilds perform **zero**
/// heap allocations — the same guarantee the force hot path carries,
/// extended to the whole step (audited by `tests/alloc_free.rs`).
#[derive(Clone, Debug, Default)]
pub struct NeighborList {
    /// `firstneigh[i]..firstneigh[i+1]` indexes `neighbors` for atom `i`.
    pub firstneigh: Vec<usize>,
    /// Concatenated neighbor indices (indices into the atom arrays,
    /// including ghost atoms).
    pub neighbors: Vec<usize>,
    /// Positions at the time the list was built (local atoms only), used by
    /// the half-skin rebuild check.
    pub reference_x: Vec<[f64; 3]>,
    /// Settings used for the build.
    pub settings: NeighborSettings,
    /// Number of local atoms the list was built for.
    pub n_local: usize,
    // Reusable binning scratch (counting-sort layout): `bin_offsets` holds
    // nbins+1 prefix offsets into `bin_atoms`, `bin_cursor` the fill
    // cursors, `atom_bin` the flattened bin id of every atom (filled in
    // parallel), `row_chunks` the per-fixed-chunk CRS build scratch.
    bin_offsets: Vec<usize>,
    bin_cursor: Vec<usize>,
    bin_atoms: Vec<usize>,
    atom_bin: Vec<usize>,
    row_chunks: Vec<RowChunk>,
}

/// Per-fixed-chunk scratch of the parallel CRS fill: the chunk's
/// concatenated neighbor rows, the per-atom row lengths, and the ≤27
/// candidate bin ids of the atom currently being scanned. Retained across
/// rebuilds so the steady state allocates nothing.
#[derive(Clone, Debug, Default)]
struct RowChunk {
    neigh: Vec<usize>,
    counts: Vec<usize>,
    stencil: Vec<usize>,
}

impl NeighborList {
    /// Neighbors of atom `i`.
    #[inline]
    pub fn neighbors_of(&self, i: usize) -> &[usize] {
        &self.neighbors[self.firstneigh[i]..self.firstneigh[i + 1]]
    }

    /// Number of neighbors of atom `i`.
    #[inline]
    pub fn count(&self, i: usize) -> usize {
        self.firstneigh[i + 1] - self.firstneigh[i]
    }

    /// Average neighbors per local atom.
    pub fn average_count(&self) -> f64 {
        if self.n_local == 0 {
            return 0.0;
        }
        self.neighbors.len() as f64 / self.n_local as f64
    }

    /// Largest neighbor count over all local atoms.
    pub fn max_count(&self) -> usize {
        (0..self.n_local).map(|i| self.count(i)).max().unwrap_or(0)
    }

    /// Pre-size the list's storage for `n_atoms` atoms with
    /// `total_neighbors` entries in all — a capacity *hint* (e.g. the
    /// settled size of a previous run of the same system, recorded in the
    /// job engine's artifact cache) that lets the first build skip the
    /// doubling reallocations. Contents are untouched; capacity only grows.
    pub fn reserve_capacity(&mut self, total_neighbors: usize, n_atoms: usize) {
        self.neighbors
            .reserve(total_neighbors.saturating_sub(self.neighbors.len()));
        self.firstneigh
            .reserve((n_atoms + 1).saturating_sub(self.firstneigh.len()));
        self.reference_x
            .reserve(n_atoms.saturating_sub(self.reference_x.len()));
    }

    /// Does the list need rebuilding given current positions? True when any
    /// local atom moved more than half the skin since the list was built.
    ///
    /// Displacements are measured with the minimum-image convention: an atom
    /// oscillating across a periodic boundary is re-wrapped to the far side
    /// of the box, and the naive difference would count that as a box-length
    /// move, triggering a spurious rebuild on every step.
    pub fn needs_rebuild(&self, atoms: &AtomData, sim_box: &SimBox) -> bool {
        if atoms.n_local != self.n_local {
            return true;
        }
        let threshold = 0.5 * self.settings.skin;
        let threshold_sq = threshold * threshold;
        atoms
            .x
            .iter()
            .take(atoms.n_local)
            .zip(self.reference_x.iter())
            .any(|(&p, &r)| sim_box.distance_sq(p, r) > threshold_sq)
    }

    /// O(N²) reference builder over local+ghost atoms with minimum-image
    /// periodicity. Only local atoms get neighbor rows; every atom (local or
    /// ghost) within the build cutoff of a local atom appears in its row.
    pub fn build_naive(atoms: &AtomData, sim_box: &SimBox, settings: NeighborSettings) -> Self {
        let cut_sq = settings.build_cutoff() * settings.build_cutoff();
        let n_local = atoms.n_local;
        let n_total = atoms.n_total();
        let mut firstneigh = Vec::with_capacity(n_local + 1);
        let mut neighbors = Vec::new();
        firstneigh.push(0);
        for i in 0..n_local {
            for j in 0..n_total {
                if i == j {
                    continue;
                }
                if sim_box.distance_sq(atoms.x[i], atoms.x[j]) <= cut_sq {
                    neighbors.push(j);
                }
            }
            firstneigh.push(neighbors.len());
        }
        NeighborList {
            firstneigh,
            neighbors,
            reference_x: atoms.x[..n_local].to_vec(),
            settings,
            n_local,
            ..Default::default()
        }
    }

    /// O(N) binned builder (fresh list; see [`NeighborList::rebuild`] for
    /// the storage-reusing form the simulation driver calls).
    pub fn build_binned(atoms: &AtomData, sim_box: &SimBox, settings: NeighborSettings) -> Self {
        let mut list = NeighborList::default();
        list.rebuild(atoms, sim_box, settings);
        list
    }

    /// Rebuild this list in place from current positions, reusing all CRS
    /// and binning storage from the previous build (serial; see
    /// [`NeighborList::rebuild_on`] for the runtime-parallel form the
    /// simulation driver calls — both produce bitwise-identical lists).
    pub fn rebuild(&mut self, atoms: &AtomData, sim_box: &SimBox, settings: NeighborSettings) {
        self.rebuild_on(atoms, sim_box, settings, &ParallelRuntime::serial());
    }

    /// Rebuild this list in place on the shared [`ParallelRuntime`].
    ///
    /// All atoms (local and ghost) are sorted into bins of side ≥ the build
    /// cutoff; each local atom then scans its own bin and the 26 surrounding
    /// bins. When ghost atoms are present (domain-decomposed runs) the bin
    /// grid covers their bounding box as well and no periodic wrapping is
    /// applied — periodicity is already encoded in the ghosts. In the
    /// single-domain case (no ghosts) periodic images are handled through
    /// the minimum-image convention by wrapping the bin grid.
    ///
    /// The build is phased so the expensive parts run in parallel while the
    /// result stays independent of the thread count:
    ///
    /// 1. **bin ids** — every atom's flattened bin index, computed in
    ///    parallel into `atom_bin` (disjoint writes);
    /// 2. **counting sort** — count → exclusive prefix → place, serial O(N)
    ///    passes that keep `bin_atoms` in ascending atom order within each
    ///    bin;
    /// 3. **CRS fill** — the fixed chunks of the local atoms each build
    ///    their rows (stencil scan, distance checks, per-row sort) into
    ///    per-chunk scratch in parallel; row contents depend only on the
    ///    bins, so any thread count produces the same rows;
    /// 4. **prefix + copy** — a serial prefix sum lays out `firstneigh`,
    ///    then every chunk copies its concatenated rows into its disjoint
    ///    span of `neighbors` in parallel.
    ///
    /// Once atom and neighbor counts have reached their steady-state
    /// maxima, a rebuild performs no heap allocation: the counting-sort
    /// arrays, per-chunk row scratch and the CRS buffers are all retained
    /// across rebuilds (audited by `tests/alloc_free.rs`).
    pub fn rebuild_on(
        &mut self,
        atoms: &AtomData,
        sim_box: &SimBox,
        settings: NeighborSettings,
        runtime: &ParallelRuntime,
    ) {
        let n_local = atoms.n_local;
        let n_total = atoms.n_total();
        let cut = settings.build_cutoff();
        let cut_sq = cut * cut;

        self.settings = settings;
        self.n_local = n_local;
        self.firstneigh.clear();
        self.neighbors.clear();
        self.reference_x.clear();
        self.firstneigh.reserve(n_local + 1);
        self.firstneigh.push(0);

        if n_total == 0 {
            return;
        }

        let periodic_wrap = atoms.n_ghost() == 0;

        // Bounding box of all atoms (equals the sim box when wrapping).
        let (lo, hi) = if periodic_wrap {
            (sim_box.lo, sim_box.hi)
        } else {
            let mut lo = [f64::INFINITY; 3];
            let mut hi = [f64::NEG_INFINITY; 3];
            for p in &atoms.x {
                for d in 0..3 {
                    lo[d] = lo[d].min(p[d]);
                    hi[d] = hi[d].max(p[d]);
                }
            }
            // Expand slightly so boundary atoms fall inside the grid.
            for d in 0..3 {
                lo[d] -= 1e-9;
                hi[d] += 1e-9;
            }
            (lo, hi)
        };

        let mut nbins = [0usize; 3];
        let mut bin_size = [0.0f64; 3];
        for d in 0..3 {
            let span = hi[d] - lo[d];
            nbins[d] = ((span / cut).floor() as usize).max(1);
            bin_size[d] = span / nbins[d] as f64;
        }

        let bin_index = |p: [f64; 3]| -> [usize; 3] {
            let mut b = [0usize; 3];
            for d in 0..3 {
                let rel = ((p[d] - lo[d]) / bin_size[d]).floor() as isize;
                b[d] = rel.clamp(0, nbins[d] as isize - 1) as usize;
            }
            b
        };
        let flat = |b: [usize; 3]| b[0] + nbins[0] * (b[1] + nbins[1] * b[2]);

        let NeighborList {
            firstneigh,
            neighbors,
            reference_x,
            bin_offsets,
            bin_cursor,
            bin_atoms,
            atom_bin,
            row_chunks,
            ..
        } = self;

        // Phase 1: flattened bin id of every atom, in parallel.
        atom_bin.clear();
        atom_bin.resize(n_total, 0);
        {
            let ids = DisjointSlice::new(atom_bin);
            runtime.par_parts(n_total, |range| {
                // SAFETY: participant ranges are disjoint and in bounds.
                let dst = unsafe { ids.slice_mut(range.clone()) };
                for (slot, i) in dst.iter_mut().zip(range) {
                    *slot = flat(bin_index(atoms.x[i]));
                }
            });
        }

        // Phase 2: counting sort of all atoms into bins: count → exclusive
        // prefix → place. Serial O(N) passes; placement in atom-index order
        // keeps every bin's atom list ascending, which makes the row scan
        // below deterministic.
        let n_bins_total = nbins[0] * nbins[1] * nbins[2];
        bin_offsets.clear();
        bin_offsets.resize(n_bins_total + 1, 0);
        for &b in atom_bin.iter() {
            bin_offsets[b + 1] += 1;
        }
        for b in 0..n_bins_total {
            bin_offsets[b + 1] += bin_offsets[b];
        }
        bin_cursor.clear();
        bin_cursor.extend_from_slice(&bin_offsets[..n_bins_total]);
        bin_atoms.clear();
        bin_atoms.resize(n_total, 0);
        for (idx, &b) in atom_bin.iter().enumerate() {
            bin_atoms[bin_cursor[b]] = idx;
            bin_cursor[b] += 1;
        }

        // Phase 3: per-chunk CRS fill over the fixed chunks of the local
        // atoms. Each chunk's rows depend only on the bin structure, so the
        // result is identical for any thread count.
        let n_chunks = fixed_chunk_count(n_local);
        while row_chunks.len() < n_chunks {
            row_chunks.push(RowChunk::default());
        }
        {
            let bin_offsets = &bin_offsets[..];
            let bin_atoms = &bin_atoms[..];
            let chunks = DisjointSlice::new(row_chunks);
            runtime.par_chunks(n_local, |c, range| {
                // SAFETY: each chunk index is processed by exactly one
                // participant per dispatch.
                let ch = unsafe { chunks.get_mut(c) };
                ch.neigh.clear();
                ch.counts.clear();
                ch.stencil.reserve(27);
                for i in range {
                    let bi = bin_index(atoms.x[i]);
                    // When a dimension has fewer than 3 bins, scanning the
                    // ±1 stencil with wrapping would visit the same bin
                    // twice; collecting candidate bins into a small set
                    // first avoids double counting.
                    ch.stencil.clear();
                    for dx in -1i64..=1 {
                        for dy in -1i64..=1 {
                            for dz in -1i64..=1 {
                                let d = [dx, dy, dz];
                                let mut nb = [0usize; 3];
                                let mut valid = true;
                                for k in 0..3 {
                                    let raw = bi[k] as i64 + d[k];
                                    if periodic_wrap && sim_box.periodic[k] {
                                        nb[k] = raw.rem_euclid(nbins[k] as i64) as usize;
                                    } else if raw < 0 || raw >= nbins[k] as i64 {
                                        valid = false;
                                        break;
                                    } else {
                                        nb[k] = raw as usize;
                                    }
                                }
                                if valid {
                                    let f = flat(nb);
                                    if !ch.stencil.contains(&f) {
                                        ch.stencil.push(f);
                                    }
                                }
                            }
                        }
                    }
                    let row_start = ch.neigh.len();
                    for &b in &ch.stencil {
                        for &j in &bin_atoms[bin_offsets[b]..bin_offsets[b + 1]] {
                            if j == i {
                                continue;
                            }
                            let d2 = if periodic_wrap {
                                sim_box.distance_sq(atoms.x[i], atoms.x[j])
                            } else {
                                let dx = atoms.x[j][0] - atoms.x[i][0];
                                let dy = atoms.x[j][1] - atoms.x[i][1];
                                let dz = atoms.x[j][2] - atoms.x[i][2];
                                dx * dx + dy * dy + dz * dz
                            };
                            if d2 <= cut_sq {
                                ch.neigh.push(j);
                            }
                        }
                    }
                    // Keep each row sorted so results are independent of bin
                    // traversal order — makes list comparison in tests
                    // trivial and gives deterministic force summation order.
                    ch.neigh[row_start..].sort_unstable();
                    ch.counts.push(ch.neigh.len() - row_start);
                }
                // Headroom against steady-trajectory fluctuations of this
                // chunk's pair count (no-op once the high-water mark holds).
                let headroom = ch.neigh.len() / 16;
                ch.neigh.reserve(headroom);
            });
        }

        // Phase 4: serial prefix sum over the per-atom row lengths, then a
        // parallel copy of every chunk's concatenated rows into its disjoint
        // span of the CRS buffer.
        let mut total = 0usize;
        for ch in row_chunks.iter().take(n_chunks) {
            for &count in &ch.counts {
                total += count;
                firstneigh.push(total);
            }
        }
        debug_assert_eq!(firstneigh.len(), n_local + 1);
        neighbors.resize(total, 0);
        {
            let row_chunks = &row_chunks[..n_chunks];
            let firstneigh = &firstneigh[..];
            let dst = DisjointSlice::new(neighbors);
            runtime.par_chunks(n_local, |c, range| {
                let span = firstneigh[range.start]..firstneigh[range.end];
                // SAFETY: chunk spans are disjoint (prefix sums of disjoint
                // atom ranges) and in bounds.
                let out = unsafe { dst.slice_mut(span) };
                out.copy_from_slice(&row_chunks[c].neigh);
            });
        }

        reference_x.extend_from_slice(&atoms.x[..n_local]);

        // Leave ~6% headroom on the neighbor buffer so the small
        // fluctuations of the pair count along a steady trajectory do not
        // force a reallocation mid-run. (`reserve` is a no-op once the
        // capacity high-water mark is reached.)
        let headroom = neighbors.len() / 16;
        neighbors.reserve(headroom);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::Lattice;

    fn si_system() -> (SimBox, AtomData) {
        Lattice::silicon([3, 3, 3]).build_perturbed(0.05, 1)
    }

    #[test]
    fn settings_validation() {
        let s = NeighborSettings::new(3.2, 1.0);
        assert_eq!(s.build_cutoff(), 4.2);
    }

    #[test]
    #[should_panic(expected = "cutoff must be positive")]
    fn zero_cutoff_rejected() {
        NeighborSettings::new(0.0, 1.0);
    }

    #[test]
    fn naive_and_binned_agree_on_silicon() {
        let (b, atoms) = si_system();
        let s = NeighborSettings::new(3.2, 1.0);
        let naive = NeighborList::build_naive(&atoms, &b, s);
        let binned = NeighborList::build_binned(&atoms, &b, s);
        assert_eq!(naive.n_local, binned.n_local);
        for i in 0..naive.n_local {
            let mut a: Vec<usize> = naive.neighbors_of(i).to_vec();
            a.sort_unstable();
            assert_eq!(a, binned.neighbors_of(i), "atom {i}");
        }
    }

    #[test]
    fn perfect_silicon_neighbor_counts() {
        let (b, atoms) = Lattice::silicon([3, 3, 3]).build();
        // Within the Tersoff cutoff (3.2 Åfor Si(C) params, no skin): exactly
        // the 4 nearest neighbors.
        let tight = NeighborList::build_binned(&atoms, &b, NeighborSettings::new(3.2, 0.0));
        for i in 0..tight.n_local {
            assert_eq!(tight.count(i), 4, "atom {i}");
        }
        // With a 1 Å skin the second shell (12 atoms at 3.84 Å) joins the
        // extended list S_i.
        let skinned = NeighborList::build_binned(&atoms, &b, NeighborSettings::new(3.2, 1.0));
        for i in 0..skinned.n_local {
            assert_eq!(skinned.count(i), 16, "atom {i}");
        }
        assert_eq!(skinned.max_count(), 16);
        assert!((skinned.average_count() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn list_is_symmetric_for_local_only_systems() {
        let (b, atoms) = si_system();
        let s = NeighborSettings::new(3.2, 0.5);
        let list = NeighborList::build_binned(&atoms, &b, s);
        for i in 0..list.n_local {
            for &j in list.neighbors_of(i) {
                assert!(
                    list.neighbors_of(j).contains(&i),
                    "pair ({i},{j}) not symmetric"
                );
            }
        }
    }

    #[test]
    fn rebuild_heuristic_triggers_on_motion() {
        let (b, mut atoms) = si_system();
        let s = NeighborSettings::new(3.2, 1.0);
        let list = NeighborList::build_binned(&atoms, &b, s);
        assert!(!list.needs_rebuild(&atoms, &b));
        // Move one atom by just under half the skin: no rebuild.
        atoms.x[10][0] += 0.49;
        assert!(!list.needs_rebuild(&atoms, &b));
        // Push it past half the skin: rebuild.
        atoms.x[10][0] += 0.02;
        assert!(list.needs_rebuild(&atoms, &b));
    }

    #[test]
    fn rebuild_when_atom_count_changes() {
        let (b, atoms) = si_system();
        let s = NeighborSettings::new(3.2, 1.0);
        let list = NeighborList::build_binned(&atoms, &b, s);
        let mut more = atoms.clone();
        more.push_local([1.0, 1.0, 1.0], [0.0; 3], 0, 99_999);
        assert!(list.needs_rebuild(&more, &b));
    }

    #[test]
    fn ghost_atoms_get_no_rows_but_appear_as_neighbors() {
        let mut atoms = AtomData::new();
        atoms.push_local([1.0, 1.0, 1.0], [0.0; 3], 0, 1);
        atoms.push_ghost([2.0, 1.0, 1.0], 0, 2);
        let b = SimBox::cubic(20.0);
        let list = NeighborList::build_binned(&atoms, &b, NeighborSettings::new(3.0, 0.0));
        assert_eq!(list.firstneigh.len(), 2); // one local row
        assert_eq!(list.neighbors_of(0), &[1]);
    }

    #[test]
    fn small_box_does_not_double_count() {
        // A box only ~2 bins wide in each dimension: the wrap-around stencil
        // must not produce duplicate neighbors.
        let (b, atoms) = Lattice::silicon([2, 2, 2]).build();
        let list = NeighborList::build_binned(&atoms, &b, NeighborSettings::new(3.2, 0.0));
        for i in 0..list.n_local {
            let row = list.neighbors_of(i);
            let mut dedup = row.to_vec();
            dedup.dedup();
            assert_eq!(dedup.len(), row.len(), "atom {i} has duplicate neighbors");
            assert_eq!(row.len(), 4);
        }
    }

    #[test]
    fn parallel_rebuild_matches_serial_exactly() {
        let (b, atoms) = Lattice::silicon([4, 3, 2]).build_perturbed(0.06, 13);
        let s = NeighborSettings::new(3.2, 1.0);
        let serial = NeighborList::build_binned(&atoms, &b, s);
        for threads in [2usize, 3, 4, 8] {
            let rt = ParallelRuntime::new(threads);
            let mut list = NeighborList::default();
            // Twice: the second rebuild exercises the storage-reuse path.
            list.rebuild_on(&atoms, &b, s, &rt);
            list.rebuild_on(&atoms, &b, s, &rt);
            assert_eq!(list.firstneigh, serial.firstneigh, "t{threads}");
            assert_eq!(list.neighbors, serial.neighbors, "t{threads}");
            assert_eq!(list.reference_x, serial.reference_x, "t{threads}");
        }
    }

    #[test]
    fn parallel_rebuild_matches_serial_with_ghosts() {
        // Ghost-bearing lists take the non-wrapping code path (bounding-box
        // grid); it must be thread-count independent too.
        let mut atoms = AtomData::new();
        for i in 0..40 {
            let t = i as f64;
            atoms.push_local(
                [1.0 + (t * 0.37).sin().abs() * 8.0, 1.0 + t * 0.2, 5.0],
                [0.0; 3],
                0,
                i as u64 + 1,
            );
        }
        for i in 0..20 {
            let t = i as f64;
            atoms.push_ghost([-1.0 - t * 0.1, 1.0 + t * 0.35, 5.0], 0, 1000 + i as u64);
        }
        let b = SimBox::cubic(12.0);
        let s = NeighborSettings::new(3.0, 0.5);
        let serial = NeighborList::build_binned(&atoms, &b, s);
        for threads in [2usize, 4] {
            let rt = ParallelRuntime::new(threads);
            let mut list = NeighborList::default();
            list.rebuild_on(&atoms, &b, s, &rt);
            assert_eq!(list.firstneigh, serial.firstneigh);
            assert_eq!(list.neighbors, serial.neighbors);
        }
    }

    #[test]
    fn empty_system() {
        let atoms = AtomData::new();
        let b = SimBox::cubic(10.0);
        let list = NeighborList::build_binned(&atoms, &b, NeighborSettings::new(3.0, 1.0));
        assert_eq!(list.average_count(), 0.0);
        assert_eq!(list.max_count(), 0);
    }
}
