//! Test-only fault injection: make a chosen timestep panic or corrupt a
//! velocity into NaN.
//!
//! A [`FaultPlan`] is attached to a simulation through
//! [`SimulationBuilder::inject_fault`](crate::simulation::SimulationBuilder::inject_fault)
//! (or to a scenario variant through the `fault` scenario field / the
//! `TERSOFF_FAULT` environment variable at the facade layer). It exists so
//! tests and CI can *prove* the fault-tolerance contract: the injected
//! fault surfaces as the right typed error, every other job's results are
//! bitwise unchanged, and the shared runtime is reusable afterwards.
//! Production runs simply never set it — the injection check in the step
//! loop is a single branch on an `Option` that is `None`.

use std::fmt;
use std::str::FromStr;

/// What kind of fault to inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the runtime's parallel section (a genuine worker panic
    /// when the simulation runs threaded), exercising pool self-healing and
    /// the [`RunError::Panicked`](crate::simulation::RunError) path.
    Panic,
    /// Overwrite one velocity component with NaN at the start of the step,
    /// exercising the [`HealthGuard`](crate::health::HealthGuard) /
    /// [`RunError::Diverged`](crate::simulation::RunError) path.
    Nan,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultKind::Panic => "panic",
            FaultKind::Nan => "nan",
        })
    }
}

impl FromStr for FaultKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "panic" => Ok(FaultKind::Panic),
            "nan" => Ok(FaultKind::Nan),
            other => Err(format!("unknown fault kind {other:?} (expected panic|nan)")),
        }
    }
}

/// Inject `kind` when the simulation reaches `step` (1-based; the fault
/// fires at the start of that step, before integration).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// What to inject.
    pub kind: FaultKind,
    /// The step at whose start the fault fires.
    pub step: u64,
}

impl FaultPlan {
    /// A plan injecting `kind` at `step`.
    pub fn new(kind: FaultKind, step: u64) -> Self {
        FaultPlan { kind, step }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.kind, self.step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_kind_round_trips_through_strings() {
        for kind in [FaultKind::Panic, FaultKind::Nan] {
            assert_eq!(kind.to_string().parse::<FaultKind>(), Ok(kind));
        }
        assert_eq!(" PANIC ".parse::<FaultKind>(), Ok(FaultKind::Panic));
        assert!("explode".parse::<FaultKind>().is_err());
    }

    #[test]
    fn fault_plan_displays_kind_and_step() {
        assert_eq!(FaultPlan::new(FaultKind::Nan, 7).to_string(), "nan@7");
    }
}
