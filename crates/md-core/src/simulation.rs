//! The simulation driver: the loop that the paper's "ns/day" metric times.
//!
//! One step is: first velocity-Verlet half step → (re)build the neighbor
//! list if any atom moved more than half the skin → force computation →
//! second half step → optional thermo sampling. Per-stage wall-clock time is
//! accumulated in [`Timers`], which is what the benchmark harness converts to
//! the paper's nanoseconds-per-day figures.

use crate::atom::AtomData;
use crate::integrate::VelocityVerlet;
use crate::neighbor::{NeighborList, NeighborSettings};
use crate::potential::{ComputeOutput, Potential};
use crate::simbox::SimBox;
use crate::thermo::{EnergyDriftTracker, ThermoState};
use crate::timer::{Stage, Timers};
use crate::units;
use crate::velocity;

/// Configuration of a simulation run.
#[derive(Clone, Debug)]
pub struct SimulationConfig {
    /// Timestep in ps.
    pub timestep: f64,
    /// Neighbor-list skin distance in Å.
    pub skin: f64,
    /// Per-type masses (g/mol).
    pub masses: Vec<f64>,
    /// How often (in steps) to record a thermo snapshot; 0 disables sampling
    /// except for the initial and final states.
    pub thermo_every: u64,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            timestep: units::DEFAULT_TIMESTEP,
            skin: 1.0,
            masses: vec![units::mass::SI],
            thermo_every: 0,
        }
    }
}

/// A running simulation: atoms + box + potential + integrator state.
pub struct Simulation<P: Potential> {
    /// Atom data (positions, velocities, forces, ...).
    pub atoms: AtomData,
    /// The periodic simulation box.
    pub sim_box: SimBox,
    /// The force field.
    pub potential: P,
    /// Run configuration.
    pub config: SimulationConfig,
    /// Current neighbor list.
    pub neighbors: NeighborList,
    /// Scratch output of the last force computation.
    pub compute_out: ComputeOutput,
    /// Per-stage timers.
    pub timers: Timers,
    /// Current step number.
    pub step: u64,
    /// Number of neighbor-list rebuilds performed.
    pub n_rebuilds: u64,
    /// Energy-conservation tracker (records every thermo sample).
    pub drift: EnergyDriftTracker,
    /// Collected thermo samples.
    pub thermo_history: Vec<ThermoState>,
    integrator: VelocityVerlet,
}

impl<P: Potential> Simulation<P> {
    /// Create a simulation and perform the initial neighbor build and force
    /// computation so that step 0 starts from consistent forces.
    pub fn new(atoms: AtomData, sim_box: SimBox, potential: P, config: SimulationConfig) -> Self {
        let integrator = VelocityVerlet::new(config.timestep);
        let settings = NeighborSettings::new(potential.cutoff(), config.skin);
        let n = atoms.n_total();
        let mut sim = Simulation {
            atoms,
            sim_box,
            potential,
            config,
            neighbors: NeighborList::default(),
            compute_out: ComputeOutput::zeros(n),
            timers: Timers::new(),
            step: 0,
            n_rebuilds: 0,
            drift: EnergyDriftTracker::new(),
            thermo_history: Vec::new(),
            integrator,
        };
        sim.neighbors = NeighborList::build_binned(&sim.atoms, &sim.sim_box, settings);
        sim.n_rebuilds += 1;
        sim.compute_forces();
        sim.record_thermo();
        sim
    }

    /// Rebuild the neighbor list unconditionally.
    fn rebuild_neighbors(&mut self) {
        let settings = NeighborSettings::new(self.potential.cutoff(), self.config.skin);
        let atoms = &self.atoms;
        let sim_box = &self.sim_box;
        self.neighbors = self.timers.time(Stage::Neighbor, || {
            NeighborList::build_binned(atoms, sim_box, settings)
        });
        self.n_rebuilds += 1;
    }

    /// Run the force field and copy the forces into the atom arrays.
    fn compute_forces(&mut self) {
        let atoms = &self.atoms;
        let sim_box = &self.sim_box;
        let neighbors = &self.neighbors;
        let potential = &mut self.potential;
        let out = &mut self.compute_out;
        self.timers.time(Stage::Force, || {
            potential.compute(atoms, sim_box, neighbors, out);
        });
        self.atoms.f.copy_from_slice(&self.compute_out.forces);
    }

    fn record_thermo(&mut self) {
        let state = ThermoState::measure(
            self.step,
            &self.atoms,
            &self.config.masses,
            &self.sim_box,
            self.compute_out.energy,
            self.compute_out.virial,
        );
        self.drift.record(state.total);
        self.thermo_history.push(state);
    }

    /// Advance the simulation by `n_steps` timesteps.
    pub fn run(&mut self, n_steps: u64) {
        for _ in 0..n_steps {
            self.step += 1;

            {
                // Disjoint field borrows so the integrator can read the
                // masses in place — the steady-state step must not allocate.
                let atoms = &mut self.atoms;
                let sim_box = &self.sim_box;
                let integrator = &self.integrator;
                let masses = &self.config.masses;
                self.timers.time(Stage::Other, || {
                    integrator.initial_integrate(atoms, masses, sim_box);
                });
            }

            if self.neighbors.needs_rebuild(&self.atoms, &self.sim_box) {
                self.rebuild_neighbors();
            }

            self.compute_forces();

            {
                let atoms = &mut self.atoms;
                let integrator = &self.integrator;
                let masses = &self.config.masses;
                self.timers.time(Stage::Other, || {
                    integrator.final_integrate(atoms, masses);
                });
            }

            let sample =
                self.config.thermo_every > 0 && self.step.is_multiple_of(self.config.thermo_every);
            if sample {
                self.record_thermo();
            }
        }
        // Always record the final state so callers can inspect conservation.
        if self
            .thermo_history
            .last()
            .map(|t| t.step != self.step)
            .unwrap_or(true)
        {
            self.record_thermo();
        }
    }

    /// Initialize velocities to a temperature (convenience wrapper).
    pub fn set_temperature(&mut self, temperature: f64, seed: u64) {
        let masses = self.config.masses.clone();
        velocity::init_velocities(&mut self.atoms, &masses, temperature, seed);
    }

    /// Latest thermo snapshot.
    pub fn current_thermo(&self) -> &ThermoState {
        self.thermo_history
            .last()
            .expect("thermo history is never empty")
    }

    /// Throughput in the paper's ns/day metric, based on the force+neighbor+
    /// comm+other time accumulated so far and the number of steps taken.
    pub fn ns_per_day(&self) -> f64 {
        if self.step == 0 {
            return 0.0;
        }
        let seconds_per_step = self.timers.total_seconds() / self.step as f64;
        units::ns_per_day(self.config.timestep, seconds_per_step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::Lattice;
    use crate::pair_lj::LennardJones;

    fn lj_sim(cells: [usize; 3]) -> Simulation<LennardJones> {
        let (sim_box, mut atoms) = Lattice::silicon(cells).build_perturbed(0.02, 3);
        let config = SimulationConfig {
            thermo_every: 5,
            ..Default::default()
        };
        velocity::init_velocities(&mut atoms, &config.masses, 300.0, 11);
        // A soft LJ parameterization so the diamond lattice does not explode.
        let lj = LennardJones::new(0.1, 2.0, 4.0);
        Simulation::new(atoms, sim_box, lj, config)
    }

    #[test]
    fn construction_computes_initial_forces_and_thermo() {
        let sim = lj_sim([2, 2, 2]);
        assert_eq!(sim.thermo_history.len(), 1);
        assert_eq!(sim.n_rebuilds, 1);
        assert!(sim.atoms.f.iter().any(|f| *f != [0.0; 3]));
    }

    #[test]
    fn run_advances_steps_and_records_thermo() {
        let mut sim = lj_sim([2, 2, 2]);
        sim.run(12);
        assert_eq!(sim.step, 12);
        // Samples at steps 5, 10 plus the initial state and the final state.
        let steps: Vec<u64> = sim.thermo_history.iter().map(|t| t.step).collect();
        assert_eq!(steps, vec![0, 5, 10, 12]);
        assert!(sim.timers.total_seconds() > 0.0);
        assert!(sim.ns_per_day() > 0.0);
    }

    #[test]
    fn nve_energy_is_approximately_conserved() {
        let mut sim = lj_sim([2, 2, 2]);
        sim.run(100);
        // Soft potential, small timestep: drift should stay well below 1%.
        assert!(
            sim.drift.max_relative_drift() < 1e-2,
            "drift = {}",
            sim.drift.max_relative_drift()
        );
    }

    #[test]
    fn neighbor_rebuilds_happen_when_atoms_move() {
        let mut sim = lj_sim([2, 2, 2]);
        // Artificially hot system to force motion beyond half the skin.
        sim.set_temperature(5000.0, 1);
        sim.run(200);
        assert!(
            sim.n_rebuilds > 1,
            "expected at least one rebuild during the run"
        );
    }

    #[test]
    fn atoms_stay_in_the_box() {
        let mut sim = lj_sim([2, 2, 2]);
        sim.set_temperature(2000.0, 2);
        sim.run(50);
        let b = sim.sim_box;
        assert!(sim.atoms.x.iter().all(|&p| b.contains(p)));
    }
}
