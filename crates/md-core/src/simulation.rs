//! The simulation driver: the loop that the paper's "ns/day" metric times.
//!
//! One step is: first velocity-Verlet half step → (re)build the neighbor
//! list if any atom moved more than half the skin → force computation →
//! second half step → optional thermo sampling. Per-stage wall-clock time is
//! accumulated in [`Timers`], which is what the benchmark harness converts to
//! the paper's nanoseconds-per-day figures.
//!
//! Simulations are constructed through [`SimulationBuilder`] (reachable as
//! `Simulation::builder`), which validates its inputs into a typed
//! [`BuildError`] instead of panicking, and [`run`](Simulation::run) returns
//! a [`RunReport`] (steps, rebuilds, ns/day, drift). Everything the old
//! driver hard-coded as fields — thermo history, drift tracking, console
//! reports — is delivered through the [`Observer`] hooks of
//! [`crate::observer`].

use crate::atom::AtomData;
use crate::checkpoint::Checkpoint;
use crate::fault::{FaultKind, FaultPlan};
use crate::integrate::VelocityVerlet;
use crate::neighbor::{NeighborList, NeighborSettings};
use crate::observer::{
    run_ns_per_day, EnergyDrift, Observer, RunPlan, RunReport, RunStatus, StepContext, ThermoLog,
};
use crate::potential::{ComputeOutput, Potential};
use crate::runtime::{panic_payload_string, ParallelRuntime};
use crate::simbox::SimBox;
use crate::thermo::ThermoState;
use crate::timer::{Stage, Timers};
use crate::units;
use crate::velocity;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// Why a [`SimulationBuilder`] refused to build.
#[derive(Clone, Debug, PartialEq)]
pub enum BuildError {
    /// The timestep must be positive (ps).
    NonPositiveTimestep(f64),
    /// The timestep is not a finite number (NaN or ±∞).
    NonFiniteTimestep(f64),
    /// The neighbor skin must be positive (Å).
    NonPositiveSkin(f64),
    /// The neighbor skin is not a finite number (NaN or ±∞).
    NonFiniteSkin(f64),
    /// The requested initial temperature is NaN, infinite, or negative.
    InvalidTemperature(f64),
    /// A resume checkpoint holds a different number of atoms than the
    /// system it is being applied to.
    CheckpointMismatch {
        /// Local atoms in the system under construction.
        expected: usize,
        /// Atoms recorded in the checkpoint.
        found: usize,
    },
    /// An atom type has no mass: `masses[atom_type]` is out of bounds.
    MissingMass {
        /// The offending atom type index.
        atom_type: usize,
        /// Number of masses supplied.
        n_masses: usize,
    },
    /// A supplied mass is zero or negative.
    NonPositiveMass {
        /// Index into the masses table.
        atom_type: usize,
        /// The offending value (g/mol).
        mass: f64,
    },
    /// A supplied mass is not a finite number (NaN or ±∞).
    NonFiniteMass {
        /// Index into the masses table.
        atom_type: usize,
        /// The offending value (g/mol).
        mass: f64,
    },
    /// A periodic box dimension is shorter than **twice** the interaction
    /// cutoff. Below that, more than one periodic image of a pair can lie
    /// within the cutoff and the minimum-image convention (which keeps only
    /// the nearest image) silently drops real interactions.
    BoxSmallerThanCutoff {
        /// The offending dimension (0 = x, 1 = y, 2 = z).
        dim: usize,
        /// Box length along that dimension (Å).
        length: f64,
        /// The potential's cutoff (Å); the box must be ≥ `2 × cutoff`.
        cutoff: f64,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::NonPositiveTimestep(dt) => {
                write!(f, "timestep must be positive, got {dt} ps")
            }
            BuildError::NonFiniteTimestep(dt) => {
                write!(f, "timestep must be finite, got {dt} ps")
            }
            BuildError::NonPositiveSkin(skin) => {
                write!(f, "neighbor skin must be positive, got {skin} Å")
            }
            BuildError::NonFiniteSkin(skin) => {
                write!(f, "neighbor skin must be finite, got {skin} Å")
            }
            BuildError::InvalidTemperature(t) => {
                write!(
                    f,
                    "initial temperature must be finite and non-negative, got {t} K"
                )
            }
            BuildError::CheckpointMismatch { expected, found } => {
                write!(
                    f,
                    "resume checkpoint records {found} atoms but the system has {expected}"
                )
            }
            BuildError::MissingMass {
                atom_type,
                n_masses,
            } => write!(
                f,
                "atom type {atom_type} has no mass (only {n_masses} masses supplied)"
            ),
            BuildError::NonPositiveMass { atom_type, mass } => {
                write!(
                    f,
                    "mass of atom type {atom_type} must be positive, got {mass} g/mol"
                )
            }
            BuildError::NonFiniteMass { atom_type, mass } => {
                write!(
                    f,
                    "mass of atom type {atom_type} must be finite, got {mass} g/mol"
                )
            }
            BuildError::BoxSmallerThanCutoff {
                dim,
                length,
                cutoff,
            } => write!(
                f,
                "box dimension {} ({length:.3} Å) is shorter than twice the potential \
                 cutoff (2 × {cutoff:.3} Å); the minimum-image convention would \
                 silently drop interactions with further periodic images",
                ["x", "y", "z"][*dim]
            ),
        }
    }
}

impl std::error::Error for BuildError {}

/// Why a fallible run ([`Simulation::try_run`]) stopped early.
#[derive(Debug)]
pub enum RunError {
    /// A health observer (e.g. [`crate::health::HealthGuard`]) reported a
    /// fault; the run was aborted deterministically after the offending
    /// step. The partial [`RunReport`] (status
    /// [`RunStatus::Diverged`]) is attached — observers saw `on_finish`,
    /// so dumps and checkpoints were flushed.
    Diverged {
        /// Step at which the fault was detected.
        step: u64,
        /// Human-readable description of the violation.
        reason: String,
        /// The partial report for the steps that did run.
        report: Box<RunReport>,
    },
    /// A panic unwound out of a timestep — a worker panic surfaced by the
    /// runtime, an injected fault, or a bug in a potential. The atom state
    /// is unspecified mid-step, so the simulation refuses further runs
    /// (see [`RunError::AlreadyFaulted`]); the [`ParallelRuntime`] itself
    /// has self-healed and remains reusable.
    Panicked {
        /// Step whose execution panicked.
        step: u64,
        /// The stringified panic payload.
        message: String,
    },
    /// A previous run panicked mid-step; this simulation's state is not
    /// trustworthy and it permanently refuses to run.
    AlreadyFaulted,
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Diverged { step, reason, .. } => {
                write!(f, "run diverged at step {step}: {reason}")
            }
            RunError::Panicked { step, message } => {
                write!(f, "step {step} panicked: {message}")
            }
            RunError::AlreadyFaulted => {
                write!(
                    f,
                    "simulation previously panicked mid-step and cannot be reused"
                )
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Declarative constructor for [`Simulation`] — replaces the old positional
/// `Simulation::new(atoms, box, potential, config)` plus `SimulationConfig`
/// grab-bag.
///
/// ```
/// use md_core::prelude::*;
///
/// let (sim_box, atoms) = Lattice::silicon([2, 2, 2]).build_perturbed(0.02, 3);
/// let lj = LennardJones::new(0.1, 2.0, 4.0);
/// let mut sim = Simulation::builder(atoms, sim_box, lj)
///     .masses(vec![units::mass::SI])
///     .temperature(300.0, 11)
///     .thermo_every(5)
///     .build()
///     .expect("valid configuration");
/// let report = sim.run(10);
/// assert_eq!(report.steps, 10);
/// ```
pub struct SimulationBuilder<P: Potential> {
    // Field visibility is crate-level so `crate::domain` can inspect the
    // configuration (cutoff, skin, box) for grid validation before building.
    pub(crate) atoms: AtomData,
    pub(crate) sim_box: SimBox,
    pub(crate) potential: P,
    pub(crate) timestep: f64,
    pub(crate) skin: f64,
    pub(crate) masses: Vec<f64>,
    pub(crate) thermo_every: u64,
    temperature: Option<(f64, u64)>,
    observers: Vec<Box<dyn Observer>>,
    default_observers: bool,
    runtime: Option<ParallelRuntime>,
    resume_from: Option<Checkpoint>,
    fault_plan: Option<FaultPlan>,
    neighbor_capacity: Option<usize>,
}

impl<P: Potential> SimulationBuilder<P> {
    /// Start building a simulation of `atoms` in `sim_box` under `potential`.
    pub fn new(atoms: AtomData, sim_box: SimBox, potential: P) -> Self {
        SimulationBuilder {
            atoms,
            sim_box,
            potential,
            timestep: units::DEFAULT_TIMESTEP,
            skin: 1.0,
            masses: vec![units::mass::SI],
            thermo_every: 0,
            temperature: None,
            observers: Vec::new(),
            default_observers: true,
            runtime: None,
            resume_from: None,
            fault_plan: None,
            neighbor_capacity: None,
        }
    }

    /// Create a [`ParallelRuntime`] of `threads` participants (`0` = one per
    /// available CPU) and run the **whole timestep** on it: force
    /// computation (the potential is re-bound onto the runtime via
    /// [`Potential::bind_runtime`]), neighbor rebuilds, velocity-Verlet
    /// updates and thermo reductions. The builder is the runtime's owner —
    /// this replaces per-subsystem thread pools.
    ///
    /// Without this call (or [`SimulationBuilder::runtime`]) the simulation
    /// adopts the potential's own runtime if it has one (e.g. a
    /// [`crate::force_engine::ForceEngine`] built with `threads > 1`), so
    /// every phase still runs on that same pool.
    pub fn threads(mut self, threads: usize) -> Self {
        self.runtime = Some(ParallelRuntime::new(threads));
        self
    }

    /// Run the whole timestep on (a handle to) an existing runtime — for
    /// sharing one worker team across several simulations or subsystems.
    pub fn runtime(mut self, runtime: &ParallelRuntime) -> Self {
        self.runtime = Some(runtime.clone());
        self
    }

    /// Timestep in ps (default: [`units::DEFAULT_TIMESTEP`]).
    pub fn timestep(mut self, dt: f64) -> Self {
        self.timestep = dt;
        self
    }

    /// Neighbor-list skin distance in Å (default: 1.0).
    pub fn skin(mut self, skin: f64) -> Self {
        self.skin = skin;
        self
    }

    /// Per-type masses in g/mol (default: silicon only).
    pub fn masses(mut self, masses: Vec<f64>) -> Self {
        self.masses = masses;
        self
    }

    /// Thermo sampling interval in steps; 0 records only the initial and
    /// final states (default: 0).
    pub fn thermo_every(mut self, every: u64) -> Self {
        self.thermo_every = every;
        self
    }

    /// Draw Maxwell–Boltzmann velocities for `temperature` K with `seed`
    /// before the initial force computation (replaces the separate
    /// `init_velocities` call).
    pub fn temperature(mut self, temperature: f64, seed: u64) -> Self {
        self.temperature = Some((temperature, seed));
        self
    }

    /// Register an observer (see [`crate::observer`]). May be called
    /// repeatedly; observers fire in registration order, after the default
    /// [`ThermoLog`] and [`EnergyDrift`].
    pub fn observe(mut self, observer: impl Observer) -> Self {
        self.observers.push(Box::new(observer));
        self
    }

    /// Register a boxed observer (for observers built dynamically).
    pub fn observe_boxed(mut self, observer: Box<dyn Observer>) -> Self {
        self.observers.push(observer);
        self
    }

    /// Do not install the default [`ThermoLog`] + [`EnergyDrift`] observers.
    /// [`RunReport::max_drift`] reads 0 without an [`EnergyDrift`] observer.
    pub fn without_default_observers(mut self) -> Self {
        self.default_observers = false;
        self
    }

    /// Restore a previous run's state from a [`Checkpoint`] instead of
    /// starting fresh: step counter, positions and velocities are restored
    /// and the neighbor list is rebuilt from the checkpoint's rebuild-time
    /// reference positions, so the continuation is **bitwise identical** to
    /// the uninterrupted run. Any [`SimulationBuilder::temperature`] request
    /// is ignored — the checkpoint's velocities win.
    pub fn resume_from(mut self, checkpoint: Checkpoint) -> Self {
        self.resume_from = Some(checkpoint);
        self
    }

    /// Test-only fault injection: make a chosen step panic or corrupt a
    /// velocity into NaN (see [`FaultPlan`]). Used by the fault-tolerance
    /// tests and CI to prove batch isolation; leave unset in real runs.
    pub fn inject_fault(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Pre-size the neighbor list for about `total_neighbors` entries (a
    /// capacity hint, e.g. the settled size of a previous run of the same
    /// system from the job engine's artifact cache), so the initial build
    /// skips the doubling reallocations. Harmless if wrong: capacity only
    /// grows, contents and results are unaffected.
    pub fn neighbor_capacity(mut self, total_neighbors: usize) -> Self {
        self.neighbor_capacity = Some(total_neighbors);
        self
    }

    /// Validate the configuration and construct the simulation: velocities
    /// are initialized (if requested), the initial neighbor list is built
    /// and forces are computed so step 0 starts from a consistent state.
    pub fn build(self) -> Result<Simulation<P>, BuildError> {
        let SimulationBuilder {
            mut atoms,
            sim_box,
            mut potential,
            timestep,
            skin,
            masses,
            thermo_every,
            temperature,
            mut observers,
            default_observers,
            runtime,
            resume_from,
            fault_plan,
            neighbor_capacity,
        } = self;

        // Finiteness first (NaN/±∞ would only blow up mid-run), then sign.
        // NaN fails the sign checks too (NaN comparisons are false).
        if !timestep.is_finite() {
            return Err(BuildError::NonFiniteTimestep(timestep));
        }
        if timestep <= 0.0 {
            return Err(BuildError::NonPositiveTimestep(timestep));
        }
        if !skin.is_finite() {
            return Err(BuildError::NonFiniteSkin(skin));
        }
        if skin <= 0.0 {
            return Err(BuildError::NonPositiveSkin(skin));
        }
        for (atom_type, &mass) in masses.iter().enumerate() {
            if !mass.is_finite() {
                return Err(BuildError::NonFiniteMass { atom_type, mass });
            }
            if mass <= 0.0 {
                return Err(BuildError::NonPositiveMass { atom_type, mass });
            }
        }
        if let Some((temperature, _)) = temperature {
            if !temperature.is_finite() || temperature < 0.0 {
                return Err(BuildError::InvalidTemperature(temperature));
            }
        }
        if let Some(&worst) = atoms.type_.iter().max() {
            if worst >= masses.len() {
                return Err(BuildError::MissingMass {
                    atom_type: worst,
                    n_masses: masses.len(),
                });
            }
        }
        let cutoff = potential.cutoff();
        let lengths = sim_box.lengths();
        for dim in 0..3 {
            if sim_box.periodic[dim] && lengths[dim] < 2.0 * cutoff {
                return Err(BuildError::BoxSmallerThanCutoff {
                    dim,
                    length: lengths[dim],
                    cutoff,
                });
            }
        }

        // One runtime for the whole timestep: the builder's (which is bound
        // into the potential so the force engine shares the pool), else the
        // potential's own (a threaded ForceEngine), else serial.
        let runtime = match runtime {
            Some(rt) => {
                potential.bind_runtime(&rt);
                rt
            }
            None => potential
                .parallel_runtime()
                .unwrap_or_else(ParallelRuntime::serial),
        };

        if resume_from.is_none() {
            if let Some((temperature, seed)) = temperature {
                velocity::init_velocities(&mut atoms, &masses, temperature, seed);
            }
        }

        if default_observers {
            let mut defaults: Vec<Box<dyn Observer>> =
                vec![Box::new(ThermoLog::new()), Box::new(EnergyDrift::new())];
            defaults.append(&mut observers);
            observers = defaults;
        }

        let integrator = VelocityVerlet::new(timestep);
        let n = atoms.n_total();
        let mut neighbors = NeighborList::default();
        if let Some(hint) = neighbor_capacity {
            neighbors.reserve_capacity(hint, n);
        }
        let mut sim = Simulation {
            atoms,
            sim_box,
            potential,
            neighbors,
            compute_out: ComputeOutput::zeros(n),
            timers: Timers::new(),
            step: 0,
            n_rebuilds: 0,
            timestep,
            skin,
            masses,
            thermo_every,
            last_thermo: ThermoState::default(),
            observers,
            integrator,
            runtime,
            ke_slots: Vec::new(),
            faulted: false,
            fault_plan,
        };
        match resume_from {
            None => {
                sim.rebuild_neighbors();
                sim.compute_forces();
                sim.record_thermo();
            }
            Some(checkpoint) => sim.restore(checkpoint)?,
        }
        Ok(sim)
    }
}

/// A running simulation: atoms + box + potential + integrator state.
///
/// Built by [`SimulationBuilder`]; advanced by [`run`](Simulation::run),
/// which drives the registered [`Observer`]s and returns a [`RunReport`].
pub struct Simulation<P: Potential> {
    /// Atom data (positions, velocities, forces, ...).
    pub atoms: AtomData,
    /// The periodic simulation box.
    pub sim_box: SimBox,
    /// The force field.
    pub potential: P,
    /// Current neighbor list (rebuilt in place — steady-state rebuilds
    /// reuse its storage and do not allocate).
    pub neighbors: NeighborList,
    /// Scratch output of the last force computation.
    pub compute_out: ComputeOutput,
    /// Per-stage timers.
    pub timers: Timers,
    /// Current step number.
    pub step: u64,
    /// Number of neighbor-list rebuilds performed.
    pub n_rebuilds: u64,
    // The remaining state is crate-visible: `crate::domain` drives the same
    // step machinery (observers, thermo sampling, fault injection) through a
    // rank-parallel timestep of its own.
    pub(crate) timestep: f64,
    pub(crate) skin: f64,
    pub(crate) masses: Vec<f64>,
    pub(crate) thermo_every: u64,
    pub(crate) last_thermo: ThermoState,
    pub(crate) observers: Vec<Box<dyn Observer>>,
    pub(crate) integrator: VelocityVerlet,
    /// The shared runtime every phase of the step dispatches through.
    pub(crate) runtime: ParallelRuntime,
    /// Reduction scratch of the chunked kinetic-energy sum (reused so the
    /// steady-state step allocates nothing).
    ke_slots: Vec<f64>,
    /// Set when a panic unwound out of a timestep: the atom state is
    /// unspecified mid-step, so every later run refuses with
    /// [`RunError::AlreadyFaulted`].
    faulted: bool,
    /// Test-only injected fault (see [`SimulationBuilder::inject_fault`]).
    pub(crate) fault_plan: Option<FaultPlan>,
}

impl<P: Potential> Simulation<P> {
    /// Start building a simulation (see [`SimulationBuilder`]).
    pub fn builder(atoms: AtomData, sim_box: SimBox, potential: P) -> SimulationBuilder<P> {
        SimulationBuilder::new(atoms, sim_box, potential)
    }

    /// Rebuild the neighbor list unconditionally on the shared runtime (in
    /// place: bin and CRS storage from the previous build is reused).
    pub(crate) fn rebuild_neighbors(&mut self) {
        let settings = NeighborSettings::new(self.potential.cutoff(), self.skin);
        let Simulation {
            timers,
            neighbors,
            atoms,
            sim_box,
            runtime,
            ..
        } = self;
        timers.time(Stage::Neighbor, || {
            neighbors.rebuild_on(atoms, sim_box, settings, runtime)
        });
        self.n_rebuilds += 1;
    }

    /// Run the force field and copy the forces into the atom arrays.
    pub(crate) fn compute_forces(&mut self) {
        let atoms = &self.atoms;
        let sim_box = &self.sim_box;
        let neighbors = &self.neighbors;
        let potential = &mut self.potential;
        let out = &mut self.compute_out;
        self.timers.time(Stage::Force, || {
            potential.compute(atoms, sim_box, neighbors, out);
        });
        self.atoms.f.copy_from_slice(&self.compute_out.forces);
    }

    pub(crate) fn record_thermo(&mut self) {
        // The kinetic energy is a chunked reduction on the shared runtime:
        // per-chunk partials folded in fixed chunk order, so the sampled
        // thermo state is bitwise identical for every thread count.
        let kinetic = velocity::kinetic_energy_on(
            &self.atoms,
            &self.masses,
            &self.runtime,
            &mut self.ke_slots,
        );
        let state = ThermoState::from_kinetic(
            self.step,
            kinetic,
            self.atoms.n_local,
            &self.sim_box,
            self.compute_out.energy,
            self.compute_out.virial,
        );
        self.last_thermo = state;
        for obs in &mut self.observers {
            obs.on_thermo(&state);
        }
    }

    /// Restore a checkpoint: rebuild the neighbor list from the positions it
    /// was originally built from (list contents and ordering feed the fixed
    /// floating-point summation order, so "same list" is a bitwise
    /// requirement), then restore the checkpointed positions/velocities and
    /// recompute forces/thermo from them.
    fn restore(&mut self, checkpoint: Checkpoint) -> Result<(), BuildError> {
        let n = self.atoms.n_local;
        let found = checkpoint
            .x
            .len()
            .min(checkpoint.v.len())
            .min(checkpoint.reference_x.len());
        if checkpoint.x.len() != n || checkpoint.v.len() != n || checkpoint.reference_x.len() != n {
            return Err(BuildError::CheckpointMismatch { expected: n, found });
        }
        self.atoms.x[..n].copy_from_slice(&checkpoint.reference_x);
        self.rebuild_neighbors();
        self.atoms.x[..n].copy_from_slice(&checkpoint.x);
        self.atoms.v[..n].copy_from_slice(&checkpoint.v);
        self.step = checkpoint.step;
        self.n_rebuilds = checkpoint.n_rebuilds;
        self.compute_forces();
        self.record_thermo();
        Ok(())
    }

    /// Snapshot the current state into a [`Checkpoint`] that
    /// [`SimulationBuilder::resume_from`] can restore bitwise (see
    /// [`crate::checkpoint`] for the automatic
    /// [`crate::checkpoint::CheckpointWriter`] observer).
    pub fn checkpoint(&self) -> Checkpoint {
        let n = self.atoms.n_local;
        Checkpoint {
            step: self.step,
            n_rebuilds: self.n_rebuilds,
            x: self.atoms.x[..n].to_vec(),
            v: self.atoms.v[..n].to_vec(),
            reference_x: self.neighbors.reference_x.clone(),
        }
    }

    /// Open a timestep: bump the step counter and fire any injected fault.
    /// Shared with the rank-parallel loop of [`crate::domain`], so faults
    /// trip at the identical step for any decomposition grid.
    pub(crate) fn begin_step(&mut self) {
        self.step += 1;

        if let Some(plan) = self.fault_plan {
            if plan.step == self.step {
                self.trip_fault(plan.kind);
            }
        }
    }

    /// Notify observers of a neighbor-list rebuild during the current step.
    pub(crate) fn notify_rebuild(&mut self) {
        let (step, n_rebuilds) = (self.step, self.n_rebuilds);
        for obs in &mut self.observers {
            obs.on_rebuild(step, n_rebuilds);
        }
    }

    /// Close a timestep: take a thermo sample when due and dispatch the
    /// per-step observer hooks. Shared with [`crate::domain`]'s loop.
    pub(crate) fn end_step(&mut self) {
        let sample = self.thermo_every > 0 && self.step.is_multiple_of(self.thermo_every);
        if sample {
            self.record_thermo();
        }

        {
            let Simulation {
                observers,
                atoms,
                sim_box,
                masses,
                neighbors,
                compute_out,
                ..
            } = self;
            let ctx = StepContext {
                step: self.step,
                atoms,
                sim_box,
                masses,
                neighbors,
                n_rebuilds: self.n_rebuilds,
                potential_energy: compute_out.energy,
                virial: compute_out.virial,
                virial_tensor: &compute_out.virial_tensor,
            };
            for obs in observers.iter_mut() {
                obs.on_step(&ctx);
            }
        }
    }

    /// One velocity-Verlet timestep: half-kick + drift, neighbor rebuild if
    /// needed, forces, second half-kick, thermo sampling, observer dispatch.
    fn advance_one_step(&mut self) {
        self.begin_step();

        {
            // Disjoint field borrows so the integrator can read the
            // masses in place — the steady-state step must not allocate.
            let atoms = &mut self.atoms;
            let sim_box = &self.sim_box;
            let integrator = &self.integrator;
            let masses = &self.masses;
            let runtime = &self.runtime;
            self.timers.time(Stage::Integrate, || {
                integrator.initial_integrate_on(atoms, masses, sim_box, runtime);
            });
        }

        if self.neighbors.needs_rebuild(&self.atoms, &self.sim_box) {
            self.rebuild_neighbors();
            self.notify_rebuild();
        }

        self.compute_forces();

        {
            let atoms = &mut self.atoms;
            let integrator = &self.integrator;
            let masses = &self.masses;
            let runtime = &self.runtime;
            self.timers.time(Stage::Integrate, || {
                integrator.final_integrate_on(atoms, masses, runtime);
            });
        }

        self.end_step();
    }

    /// Execute an injected fault (test-only; see
    /// [`SimulationBuilder::inject_fault`]).
    fn trip_fault(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::Panic => {
                // Panic inside a parallel section so that with threads > 1
                // this exercises a genuine worker panic: the pool catches
                // it, self-heals, and dispatch re-raises it as a typed
                // RuntimeError message that try_run catches per-step.
                let step = self.step;
                let participants = self.runtime.threads();
                self.runtime.dispatch(&|who| {
                    if who + 1 == participants {
                        panic!("injected fault: panic at step {step}");
                    }
                });
            }
            FaultKind::Nan => {
                if let Some(v) = self.atoms.v.first_mut() {
                    v[0] = f64::NAN;
                }
            }
        }
    }

    /// Advance the simulation by `n_steps` timesteps, driving the observers,
    /// and report what happened. Panics if a timestep panics; a
    /// health-guard abort is reported through [`RunReport::status`] instead
    /// of an error. Use [`try_run`](Simulation::try_run) for typed errors.
    pub fn run(&mut self, n_steps: u64) -> RunReport {
        match self.try_run(n_steps) {
            Ok(report) => report,
            Err(RunError::Diverged { report, .. }) => *report,
            Err(err) => panic!("{err}"),
        }
    }

    /// Fallible variant of [`run`](Simulation::run): advance by up to
    /// `n_steps` timesteps.
    ///
    /// - A panic unwinding out of a timestep (worker panic, injected fault,
    ///   potential bug) is caught and returned as [`RunError::Panicked`];
    ///   the simulation is marked faulted and refuses further runs, but the
    ///   shared [`ParallelRuntime`] stays healthy and reusable.
    /// - If an observer reports a fault (see [`Observer::fault`]) the run
    ///   stops after that step, observers still see `on_finish` (dumps and
    ///   checkpoints flush), and [`RunError::Diverged`] carries the partial
    ///   report with [`RunStatus::Diverged`].
    pub fn try_run(&mut self, n_steps: u64) -> Result<RunReport, RunError> {
        self.run_driver(n_steps, Self::advance_one_step)
    }

    /// The run loop shared between [`try_run`](Simulation::try_run) and the
    /// rank-parallel [`crate::domain::DomainSimulation`]: drives `advance`
    /// once per step inside a panic guard, polls observer faults, and
    /// assembles the [`RunReport`]. `advance` is the whole timestep — the
    /// single-domain and decomposed loops differ only in what it does.
    pub(crate) fn run_driver(
        &mut self,
        n_steps: u64,
        mut advance: impl FnMut(&mut Self),
    ) -> Result<RunReport, RunError> {
        if self.faulted {
            return Err(RunError::AlreadyFaulted);
        }
        let wall_start = Instant::now();
        let rebuilds_before = self.n_rebuilds;
        let plan = RunPlan {
            first_step: self.step,
            n_steps,
            thermo_every: self.thermo_every,
            timestep: self.timestep,
        };
        for obs in &mut self.observers {
            obs.on_run_start(&plan);
        }

        let mut fault = None;
        let mut steps_taken = 0u64;
        for _ in 0..n_steps {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| advance(self))) {
                self.faulted = true;
                return Err(RunError::Panicked {
                    step: self.step,
                    message: panic_payload_string(payload.as_ref()),
                });
            }
            steps_taken += 1;
            // Poll the observers' fault channel (allocation-free: the
            // default impl returns None without touching the heap).
            fault = self.observers.iter().find_map(|o| o.fault());
            if fault.is_some() {
                break;
            }
        }
        // Always record the final state so callers can inspect conservation.
        if self.last_thermo.step != self.step {
            self.record_thermo();
        }

        let (max_drift, last_drift) = self
            .observer::<EnergyDrift>()
            .map(|d| (d.max_relative_drift(), d.last_relative_drift()))
            .unwrap_or((0.0, 0.0));
        let status = match &fault {
            None => RunStatus::Completed,
            Some(f) => RunStatus::Diverged {
                step: f.step,
                reason: f.reason.clone(),
            },
        };
        let warnings: Vec<String> = self.observers.iter().flat_map(|o| o.warnings()).collect();
        let wall_seconds = wall_start.elapsed().as_secs_f64();
        let report = RunReport {
            steps: steps_taken,
            total_steps: self.step,
            rebuilds: self.n_rebuilds - rebuilds_before,
            total_rebuilds: self.n_rebuilds,
            wall_seconds,
            ns_per_day: run_ns_per_day(self.timestep, steps_taken, wall_seconds),
            max_drift,
            last_drift,
            final_thermo: self.last_thermo,
            timers: self.timers.clone(),
            status,
            warnings,
        };
        for obs in &mut self.observers {
            obs.on_finish(&report);
        }
        match fault {
            None => Ok(report),
            Some(f) => Err(RunError::Diverged {
                step: f.step,
                reason: f.reason,
                report: Box::new(report),
            }),
        }
    }

    /// Initialize velocities to a temperature (convenience wrapper).
    pub fn set_temperature(&mut self, temperature: f64, seed: u64) {
        let Simulation { atoms, masses, .. } = self;
        velocity::init_velocities(atoms, masses, temperature, seed);
    }

    /// Timestep in ps.
    pub fn timestep(&self) -> f64 {
        self.timestep
    }

    /// Neighbor skin in Å.
    pub fn skin(&self) -> f64 {
        self.skin
    }

    /// Per-type masses (g/mol).
    pub fn masses(&self) -> &[f64] {
        &self.masses
    }

    /// Thermo sampling interval (steps; 0 = final state only).
    pub fn thermo_every(&self) -> u64 {
        self.thermo_every
    }

    /// The shared [`ParallelRuntime`] every phase of the step runs on —
    /// clone the handle to dispatch auxiliary work (e.g. the rank loop of a
    /// [`crate::domain::DomainSimulation`]) onto the same pool.
    pub fn runtime(&self) -> &ParallelRuntime {
        &self.runtime
    }

    /// Latest thermo snapshot.
    pub fn current_thermo(&self) -> &ThermoState {
        &self.last_thermo
    }

    /// Largest relative energy drift seen so far (0 if the [`EnergyDrift`]
    /// observer was removed).
    pub fn max_drift(&self) -> f64 {
        self.observer::<EnergyDrift>()
            .map(|d| d.max_relative_drift())
            .unwrap_or(0.0)
    }

    /// The recorded thermo history (empty if the [`ThermoLog`] observer was
    /// removed via [`SimulationBuilder::without_default_observers`]).
    pub fn thermo_history(&self) -> &[ThermoState] {
        self.observer::<ThermoLog>()
            .map(|log| log.samples())
            .unwrap_or(&[])
    }

    /// Register an additional observer after construction. It misses the
    /// initial thermo sample but sees everything from the next `run` on.
    pub fn add_observer(&mut self, observer: impl Observer) {
        self.observers.push(Box::new(observer));
    }

    /// The first registered observer of concrete type `T`, if any.
    pub fn observer<T: Observer>(&self) -> Option<&T> {
        self.observers
            .iter()
            .find_map(|o| o.as_any().downcast_ref::<T>())
    }

    /// Mutable access to the first registered observer of type `T`.
    pub fn observer_mut<T: Observer>(&mut self) -> Option<&mut T> {
        self.observers
            .iter_mut()
            .find_map(|o| o.as_any_mut().downcast_mut::<T>())
    }

    /// Throughput in the paper's ns/day metric, based on the force+neighbor+
    /// comm+other time accumulated so far and the number of steps taken.
    pub fn ns_per_day(&self) -> f64 {
        if self.step == 0 {
            return 0.0;
        }
        let seconds_per_step = self.timers.total_seconds() / self.step as f64;
        units::ns_per_day(self.timestep, seconds_per_step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::Lattice;
    use crate::pair_lj::LennardJones;

    fn lj_sim(cells: [usize; 3]) -> Simulation<LennardJones> {
        let (sim_box, atoms) = Lattice::silicon(cells).build_perturbed(0.02, 3);
        // A soft LJ parameterization so the diamond lattice does not explode.
        let lj = LennardJones::new(0.1, 2.0, 4.0);
        Simulation::builder(atoms, sim_box, lj)
            .masses(vec![units::mass::SI])
            .temperature(300.0, 11)
            .thermo_every(5)
            .build()
            .expect("valid configuration")
    }

    #[test]
    fn construction_computes_initial_forces_and_thermo() {
        let sim = lj_sim([2, 2, 2]);
        assert_eq!(sim.thermo_history().len(), 1);
        assert_eq!(sim.n_rebuilds, 1);
        assert!(sim.atoms.f.iter().any(|f| *f != [0.0; 3]));
    }

    #[test]
    fn run_advances_steps_and_reports() {
        let mut sim = lj_sim([2, 2, 2]);
        let report = sim.run(12);
        assert_eq!(sim.step, 12);
        assert_eq!(report.steps, 12);
        assert_eq!(report.total_steps, 12);
        assert_eq!(report.final_thermo.step, 12);
        // Samples at steps 5, 10 plus the initial state and the final state.
        let steps: Vec<u64> = sim.thermo_history().iter().map(|t| t.step).collect();
        assert_eq!(steps, vec![0, 5, 10, 12]);
        assert!(sim.timers.total_seconds() > 0.0);
        assert!(sim.ns_per_day() > 0.0);
        assert!(report.ns_per_day > 0.0);
        assert!(report.seconds_per_step() > 0.0);
    }

    #[test]
    fn nve_energy_is_approximately_conserved() {
        let mut sim = lj_sim([2, 2, 2]);
        let report = sim.run(100);
        // Soft potential, small timestep: drift should stay well below 1%.
        assert!(report.max_drift < 1e-2, "drift = {}", report.max_drift);
        assert_eq!(report.max_drift, sim.max_drift());
    }

    #[test]
    fn neighbor_rebuilds_happen_when_atoms_move() {
        let mut sim = lj_sim([2, 2, 2]);
        // Artificially hot system to force motion beyond half the skin.
        sim.set_temperature(5000.0, 1);
        let report = sim.run(200);
        assert!(
            report.total_rebuilds > 1,
            "expected at least one rebuild during the run"
        );
        assert_eq!(report.rebuilds, report.total_rebuilds - 1);
    }

    #[test]
    fn atoms_stay_in_the_box() {
        let mut sim = lj_sim([2, 2, 2]);
        sim.set_temperature(2000.0, 2);
        sim.run(50);
        let b = sim.sim_box;
        assert!(sim.atoms.x.iter().all(|&p| b.contains(p)));
    }

    #[test]
    fn observers_receive_step_rebuild_and_finish_events() {
        #[derive(Default)]
        struct Counter {
            steps: u64,
            rebuilds: u64,
            thermo: u64,
            finishes: u64,
            run_starts: u64,
        }
        impl Observer for Counter {
            fn on_run_start(&mut self, _plan: &RunPlan) {
                self.run_starts += 1;
            }
            fn on_step(&mut self, _ctx: &StepContext<'_>) {
                self.steps += 1;
            }
            fn on_thermo(&mut self, _state: &ThermoState) {
                self.thermo += 1;
            }
            fn on_rebuild(&mut self, _step: u64, _n: u64) {
                self.rebuilds += 1;
            }
            fn on_finish(&mut self, _report: &RunReport) {
                self.finishes += 1;
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }

        let (sim_box, atoms) = Lattice::silicon([2, 2, 2]).build_perturbed(0.02, 3);
        let lj = LennardJones::new(0.1, 2.0, 4.0);
        let mut sim = Simulation::builder(atoms, sim_box, lj)
            .masses(vec![units::mass::SI])
            .temperature(4000.0, 11)
            .thermo_every(5)
            .observe(Counter::default())
            .build()
            .unwrap();
        sim.run(20);
        let c = sim.observer::<Counter>().unwrap();
        assert_eq!(c.steps, 20);
        assert_eq!(c.run_starts, 1);
        assert_eq!(c.finishes, 1);
        // 4 interior samples + final (the initial sample fired before the
        // Counter saw on_thermo? no: observers are installed at build, so
        // the initial sample counts too).
        assert_eq!(c.thermo, 5);
        assert!(c.rebuilds >= 1, "hot system should rebuild");
    }

    #[test]
    fn builder_rejects_bad_inputs() {
        let build = |f: fn(SimulationBuilder<LennardJones>) -> SimulationBuilder<LennardJones>| {
            let (sim_box, atoms) = Lattice::silicon([2, 2, 2]).build_perturbed(0.02, 3);
            let lj = LennardJones::new(0.1, 2.0, 4.0);
            f(Simulation::builder(atoms, sim_box, lj).masses(vec![units::mass::SI])).build()
        };
        assert_eq!(
            build(|b| b.timestep(0.0)).err(),
            Some(BuildError::NonPositiveTimestep(0.0))
        );
        assert_eq!(
            build(|b| b.timestep(-1.0)).err(),
            Some(BuildError::NonPositiveTimestep(-1.0))
        );
        assert_eq!(
            build(|b| b.skin(0.0)).err(),
            Some(BuildError::NonPositiveSkin(0.0))
        );
        assert_eq!(
            build(|b| b.masses(Vec::new())).err(),
            Some(BuildError::MissingMass {
                atom_type: 0,
                n_masses: 0
            })
        );
        assert_eq!(
            build(|b| b.masses(vec![-5.0])).err(),
            Some(BuildError::NonPositiveMass {
                atom_type: 0,
                mass: -5.0
            })
        );
        assert!(build(|b| b).is_ok());
    }

    #[test]
    fn builder_rejects_boxes_smaller_than_twice_the_cutoff() {
        // Clearly too small: box 3.0 < cutoff 4.0.
        let (_, atoms) = Lattice::silicon([1, 1, 1]).build();
        let tiny = SimBox::cubic(3.0);
        let lj = LennardJones::new(0.1, 2.0, 4.0);
        let err = Simulation::builder(atoms, tiny, lj)
            .masses(vec![units::mass::SI])
            .build()
            .err();
        assert!(
            matches!(err, Some(BuildError::BoxSmallerThanCutoff { cutoff, .. }) if cutoff == 4.0),
            "got {err:?}"
        );

        // The subtle case the check exists for: cutoff < L < 2·cutoff. The
        // minimum-image convention keeps only the nearest periodic image, so
        // interactions with the second image would be silently dropped.
        let (_, atoms) = Lattice::silicon([1, 1, 1]).build();
        let marginal = SimBox::cubic(6.0); // 4.0 < 6.0 < 8.0
        let lj = LennardJones::new(0.1, 2.0, 4.0);
        let err = Simulation::builder(atoms, marginal, lj)
            .masses(vec![units::mass::SI])
            .build()
            .err();
        assert!(
            matches!(err, Some(BuildError::BoxSmallerThanCutoff { length, .. }) if length == 6.0),
            "got {err:?}"
        );
    }

    #[test]
    fn errors_display_something_useful() {
        let e = BuildError::MissingMass {
            atom_type: 1,
            n_masses: 1,
        };
        assert!(e.to_string().contains("atom type 1"));
        let e = BuildError::BoxSmallerThanCutoff {
            dim: 2,
            length: 3.0,
            cutoff: 4.0,
        };
        assert!(e.to_string().contains('z'));
    }
}
