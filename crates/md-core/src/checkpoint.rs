//! Bit-exact checkpoint/resume: serialize a simulation's dynamic state so a
//! killed run restarts and continues **bitwise identically**.
//!
//! A [`Checkpoint`] records the step counter, positions, velocities, and —
//! crucially — the neighbor list's rebuild-time reference positions.
//! Restoring naively (rebuilding the list from the *current* positions)
//! would produce a different neighbor list than the original run had at
//! that step, and since list contents and ordering feed the fixed
//! floating-point summation order, the continuation would drift from the
//! uninterrupted run in the last bits. Restoring instead rebuilds from the
//! reference positions (reproducing the exact list) and then swaps the
//! current positions back in — see
//! [`SimulationBuilder::resume_from`](crate::simulation::SimulationBuilder::resume_from).
//!
//! The on-disk format is strict JSON with every `f64` spelled as the
//! 16-hex-digit big-endian bit pattern of its IEEE-754 representation, so
//! serialization round-trips exactly (no shortest-float printing or parsing
//! in the loop). Files are written atomically (temp file + rename): a crash
//! mid-write leaves the previous checkpoint intact.
//!
//! [`CheckpointWriter`] is the [`Observer`] that saves a checkpoint every
//! `every` steps; IO failures disarm it but surface as [`RunReport`]
//! warnings (never silently).

use crate::observer::{Observer, RunReport, StepContext};
use std::any::Any;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// The format marker every checkpoint file carries.
pub const CHECKPOINT_FORMAT: &str = "md-core-checkpoint-v1";

/// A snapshot of a simulation's dynamic state (see module docs).
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Step counter at capture time.
    pub step: u64,
    /// Neighbor-list rebuild counter at capture time.
    pub n_rebuilds: u64,
    /// Local-atom positions (Å).
    pub x: Vec<[f64; 3]>,
    /// Local-atom velocities (Å/ps).
    pub v: Vec<[f64; 3]>,
    /// Positions the current neighbor list was built from.
    pub reference_x: Vec<[f64; 3]>,
}

/// Why a checkpoint could not be saved or loaded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// Filesystem error (message includes the path).
    Io(String),
    /// The file is not a valid checkpoint.
    Parse(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(msg) => write!(f, "checkpoint io error: {msg}"),
            CheckpointError::Parse(msg) => write!(f, "invalid checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl Checkpoint {
    /// Capture the state visible in a step context (used by
    /// [`CheckpointWriter`]; from user code prefer
    /// [`Simulation::checkpoint`](crate::simulation::Simulation::checkpoint)).
    pub fn capture(ctx: &StepContext<'_>) -> Self {
        let n = ctx.atoms.n_local;
        Checkpoint {
            step: ctx.step,
            n_rebuilds: ctx.n_rebuilds,
            x: ctx.atoms.x[..n].to_vec(),
            v: ctx.atoms.v[..n].to_vec(),
            reference_x: ctx.neighbors.reference_x.clone(),
        }
    }

    /// Serialize to the strict-JSON checkpoint format.
    pub fn to_json(&self) -> String {
        let n_components = 3 * (self.x.len() + self.v.len() + self.reference_x.len());
        let mut out = String::with_capacity(64 + 19 * n_components);
        out.push_str("{\n  \"format\": \"");
        out.push_str(CHECKPOINT_FORMAT);
        out.push_str("\",\n  \"step\": ");
        out.push_str(&self.step.to_string());
        out.push_str(",\n  \"n_rebuilds\": ");
        out.push_str(&self.n_rebuilds.to_string());
        for (key, array) in [
            ("x", &self.x),
            ("v", &self.v),
            ("reference_x", &self.reference_x),
        ] {
            out.push_str(",\n  \"");
            out.push_str(key);
            out.push_str("\": [");
            for (i, atom) in array.iter().enumerate() {
                for (k, c) in atom.iter().enumerate() {
                    if i + k > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    push_hex_f64(&mut out, *c);
                    out.push('"');
                }
            }
            out.push(']');
        }
        out.push_str("\n}\n");
        out
    }

    /// Parse the strict-JSON checkpoint format (rejects unknown keys,
    /// duplicates, missing fields, malformed hex, and trailing garbage).
    pub fn from_json(text: &str) -> Result<Self, CheckpointError> {
        let mut p = Parser::new(text);
        let cp = p.parse().map_err(CheckpointError::Parse)?;
        Ok(cp)
    }

    /// Save atomically: write `<path>.tmp`, then rename over `path`.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        fs::write(&tmp, self.to_json())
            .map_err(|e| CheckpointError::Io(format!("{}: {e}", tmp.display())))?;
        fs::rename(&tmp, path).map_err(|e| CheckpointError::Io(format!("{}: {e}", path.display())))
    }

    /// Load a checkpoint from disk.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let text = fs::read_to_string(path)
            .map_err(|e| CheckpointError::Io(format!("{}: {e}", path.display())))?;
        Checkpoint::from_json(&text)
    }
}

fn push_hex_f64(out: &mut String, value: f64) {
    let bits = value.to_bits();
    for shift in (0..16).rev() {
        let nibble = ((bits >> (shift * 4)) & 0xf) as u32;
        out.push(char::from_digit(nibble, 16).unwrap());
    }
}

fn hex_to_f64(s: &str) -> Result<f64, String> {
    if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(format!("expected 16 hex digits, got {s:?}"));
    }
    let bits = u64::from_str_radix(s, 16).map_err(|e| e.to_string())?;
    Ok(f64::from_bits(bits))
}

/// Minimal strict parser for exactly the object [`Checkpoint::to_json`]
/// writes. Not a general JSON parser: strings carry no escapes (hex digits
/// and the format marker only) and numbers are unsigned integers — both
/// facts of the format, both enforced.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn parse(&mut self) -> Result<Checkpoint, String> {
        self.expect(b'{')?;
        let mut format = None;
        let mut step = None;
        let mut n_rebuilds = None;
        let mut x = None;
        let mut v = None;
        let mut reference_x = None;
        loop {
            let key = self.string()?.to_owned();
            self.expect(b':')?;
            let dup = match key.as_str() {
                "format" => format.replace(self.string()?.to_owned()).is_some(),
                "step" => step.replace(self.u64()?).is_some(),
                "n_rebuilds" => n_rebuilds.replace(self.u64()?).is_some(),
                "x" => x.replace(self.f64_array()?).is_some(),
                "v" => v.replace(self.f64_array()?).is_some(),
                "reference_x" => reference_x.replace(self.f64_array()?).is_some(),
                other => return Err(format!("unknown key {other:?}")),
            };
            if dup {
                return Err(format!("duplicate key {key:?}"));
            }
            match self.next_token()? {
                b',' => continue,
                b'}' => break,
                other => return Err(format!("expected ',' or '}}', got {:?}", other as char)),
            }
        }
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err("trailing garbage after checkpoint object".to_owned());
        }
        let format = format.ok_or("missing key \"format\"")?;
        if format != CHECKPOINT_FORMAT {
            return Err(format!(
                "unsupported format {format:?} (expected {CHECKPOINT_FORMAT:?})"
            ));
        }
        let x = x.ok_or("missing key \"x\"")?;
        let v = v.ok_or("missing key \"v\"")?;
        let reference_x = reference_x.ok_or("missing key \"reference_x\"")?;
        if x.len() != v.len() || x.len() != reference_x.len() {
            return Err(format!(
                "array length mismatch: x = {}, v = {}, reference_x = {} atoms",
                x.len(),
                v.len(),
                reference_x.len()
            ));
        }
        Ok(Checkpoint {
            step: step.ok_or("missing key \"step\"")?,
            n_rebuilds: n_rebuilds.ok_or("missing key \"n_rebuilds\"")?,
            x,
            v,
            reference_x,
        })
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn next_token(&mut self) -> Result<u8, String> {
        self.skip_ws();
        let b = *self.bytes.get(self.pos).ok_or("unexpected end of input")?;
        self.pos += 1;
        Ok(b)
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        let got = self.next_token()?;
        if got != want {
            return Err(format!(
                "expected {:?}, got {:?}",
                want as char, got as char
            ));
        }
        Ok(())
    }

    fn string(&mut self) -> Result<&'a str, String> {
        self.expect(b'"')?;
        let start = self.pos;
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => break,
                Some(b'\\') => return Err("escapes are not part of the format".to_owned()),
                Some(_) => self.pos += 1,
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| format!("invalid utf-8 in string: {e}"))?;
        self.pos += 1;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err("expected an unsigned integer".to_owned());
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .unwrap()
            .parse()
            .map_err(|e| format!("invalid integer: {e}"))
    }

    fn f64_array(&mut self) -> Result<Vec<[f64; 3]>, String> {
        self.expect(b'[')?;
        let mut flat = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
        } else {
            loop {
                flat.push(hex_to_f64(self.string()?)?);
                match self.next_token()? {
                    b',' => continue,
                    b']' => break,
                    other => return Err(format!("expected ',' or ']', got {:?}", other as char)),
                }
            }
        }
        if !flat.len().is_multiple_of(3) {
            return Err(format!(
                "component count {} is not a multiple of 3",
                flat.len()
            ));
        }
        Ok(flat.chunks_exact(3).map(|c| [c[0], c[1], c[2]]).collect())
    }
}

/// Observer that saves a [`Checkpoint`] every `every` steps (atomically,
/// overwriting the previous one). An IO failure disarms the writer but is
/// reported through [`Observer::warnings`] into [`RunReport::warnings`].
#[derive(Debug)]
pub struct CheckpointWriter {
    path: PathBuf,
    every: u64,
    written: u64,
    last_step: Option<u64>,
    error: Option<String>,
}

impl CheckpointWriter {
    /// Write to `path` every `every` steps (`0` disables periodic writes).
    pub fn new(path: impl Into<PathBuf>, every: u64) -> Self {
        CheckpointWriter {
            path: path.into(),
            every,
            written: 0,
            last_step: None,
            error: None,
        }
    }

    /// The checkpoint file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of checkpoints written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Step of the last successfully written checkpoint.
    pub fn last_step(&self) -> Option<u64> {
        self.last_step
    }

    /// The IO error that disarmed the writer, if any.
    pub fn error(&self) -> Option<&str> {
        self.error.as_deref()
    }
}

impl Observer for CheckpointWriter {
    fn on_step(&mut self, ctx: &StepContext<'_>) {
        if self.error.is_some() || self.every == 0 || !ctx.step.is_multiple_of(self.every) {
            return;
        }
        match Checkpoint::capture(ctx).save(&self.path) {
            Ok(()) => {
                self.written += 1;
                self.last_step = Some(ctx.step);
            }
            Err(e) => self.error = Some(e.to_string()),
        }
    }

    fn on_finish(&mut self, _report: &RunReport) {}

    fn warnings(&self) -> Vec<String> {
        self.error
            .iter()
            .map(|e| format!("checkpoint writer disarmed: {e}"))
            .collect()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            step: 42,
            n_rebuilds: 3,
            x: vec![[0.1, -2.5e-17, f64::MIN_POSITIVE], [1.0, 2.0, 3.0]],
            v: vec![[-0.0, 1.5, f64::MAX], [0.25, -0.125, 1e-300]],
            reference_x: vec![[0.1, 0.0, 0.0], [1.0, 2.0, 3.0]],
        }
    }

    #[test]
    fn json_round_trip_is_bitwise_exact() {
        let cp = sample();
        let parsed = Checkpoint::from_json(&cp.to_json()).unwrap();
        assert_eq!(parsed.step, cp.step);
        assert_eq!(parsed.n_rebuilds, cp.n_rebuilds);
        for (a, b) in [(&parsed.x, &cp.x), (&parsed.v, &cp.v)] {
            for (pa, pb) in a.iter().zip(b.iter()) {
                for k in 0..3 {
                    assert_eq!(pa[k].to_bits(), pb[k].to_bits());
                }
            }
        }
    }

    #[test]
    fn parser_rejects_malformed_input() {
        let good = sample().to_json();
        assert!(Checkpoint::from_json(&good).is_ok());
        for bad in [
            "",
            "{}",
            "[]",
            &good.replace("md-core-checkpoint-v1", "md-core-checkpoint-v0"),
            &good.replace("\"step\"", "\"stap\""),
            &(good.clone() + "x"),
            &good.replace("\"n_rebuilds\": 3", "\"n_rebuilds\": -3"),
        ] {
            assert!(Checkpoint::from_json(bad).is_err(), "accepted: {bad:?}");
        }
        // A truncated hex literal must be rejected too.
        let truncated = good.replacen("\",\"", "\",\"dead\",\"", 1);
        assert!(Checkpoint::from_json(&truncated).is_err());
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join("md-core-checkpoint-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cp.json");
        let cp = sample();
        cp.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), cp);
        fs::remove_file(&path).ok();
    }
}
