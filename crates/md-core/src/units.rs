//! Physical constants and unit conversions, LAMMPS `metal` style.
//!
//! * length — Ångström
//! * time — picosecond
//! * energy — electron-volt
//! * mass — g/mol
//! * temperature — Kelvin
//! * pressure — bar
//! * velocity — Å/ps
//! * force — eV/Å

/// Boltzmann constant in eV/K.
pub const BOLTZMANN: f64 = 8.617_343e-5;

/// Conversion factor: `mass [g/mol] · velocity² [Å²/ps²] → energy [eV]`.
pub const MVV2E: f64 = 1.036_426_9e-4;

/// Conversion factor: `force [eV/Å] / mass [g/mol] → acceleration [Å/ps²]`.
pub const FTM2V: f64 = 1.0 / MVV2E;

/// Conversion factor for the virial pressure: `eV/Å³ → bar`.
pub const NKTV2P: f64 = 1.602_176_6e6;

/// Conversion factor for elastic moduli: `eV/Å³ → GPa` (= NKTV2P / 10⁴,
/// since 1 GPa = 10⁴ bar).
pub const EV_A3_TO_GPA: f64 = NKTV2P / 1.0e4;

/// Default timestep for metal units, in ps (1 fs).
pub const DEFAULT_TIMESTEP: f64 = 0.001;

/// Atomic masses (g/mol) of the species used in the examples and benchmarks.
pub mod mass {
    /// Silicon.
    pub const SI: f64 = 28.0855;
    /// Carbon.
    pub const C: f64 = 12.0107;
    /// Germanium.
    pub const GE: f64 = 72.63;
}

/// Lattice constants (Å) of the diamond-structure crystals used in the
/// benchmarks.
pub mod lattice_constant {
    /// Silicon diamond cubic.
    pub const SI: f64 = 5.431;
    /// Diamond carbon.
    pub const C: f64 = 3.567;
    /// Germanium.
    pub const GE: f64 = 5.658;
    /// Cubic SiC (zincblende).
    pub const SIC: f64 = 4.3596;
    /// Si₀.₅Ge₀.₅ alloy, Vegard interpolation between Si and Ge.
    pub const SIGE: f64 = (SI + GE) / 2.0;
}

/// Kinetic energy of one particle: `½ · mvv2e · m · |v|²` (eV).
#[inline]
pub fn kinetic_energy(mass: f64, v: [f64; 3]) -> f64 {
    0.5 * MVV2E * mass * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2])
}

/// Instantaneous temperature of `n` unconstrained atoms with total kinetic
/// energy `ke` (3N degrees of freedom).
#[inline]
pub fn temperature(ke: f64, n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    2.0 * ke / (3.0 * n as f64 * BOLTZMANN)
}

/// "ns/day" throughput metric the paper reports: given a timestep in ps and
/// the measured wall-clock seconds per MD step, how many nanoseconds of
/// simulated time are produced per day of wall-clock time.
#[inline]
pub fn ns_per_day(timestep_ps: f64, seconds_per_step: f64) -> f64 {
    if seconds_per_step <= 0.0 {
        return f64::INFINITY;
    }
    let steps_per_day = 86_400.0 / seconds_per_step;
    steps_per_day * timestep_ps * 1e-3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_consistent() {
        assert!((MVV2E * FTM2V - 1.0).abs() < 1e-12);
        const { assert!(BOLTZMANN > 8.6e-5 && BOLTZMANN < 8.7e-5) }
    }

    #[test]
    fn kinetic_energy_and_temperature_roundtrip() {
        // One silicon atom moving at thermal speed for 300 K should report
        // a temperature near 300 K when plugged back in (with 3/2 kT = KE).
        let t_target = 300.0;
        let v2 = 3.0 * BOLTZMANN * t_target / (MVV2E * mass::SI);
        let v = v2.sqrt();
        let ke = kinetic_energy(mass::SI, [v, 0.0, 0.0]);
        let t = temperature(ke, 1);
        assert!((t - t_target).abs() < 1e-9, "T = {t}");
    }

    #[test]
    fn temperature_of_zero_atoms_is_zero() {
        assert_eq!(temperature(1.0, 0), 0.0);
    }

    #[test]
    fn ns_per_day_scaling() {
        // 1 fs timestep, 1 second per step -> 86400 steps/day -> 86.4 ps/day
        // = 0.0864 ns/day.
        let v = ns_per_day(DEFAULT_TIMESTEP, 1.0);
        assert!((v - 0.0864).abs() < 1e-12);
        // Ten times faster stepping gives ten times the throughput.
        assert!((ns_per_day(DEFAULT_TIMESTEP, 0.1) - 0.864).abs() < 1e-12);
        assert_eq!(ns_per_day(DEFAULT_TIMESTEP, 0.0), f64::INFINITY);
    }

    #[test]
    fn lattice_constants_sane() {
        const { assert!(lattice_constant::SI > 5.0 && lattice_constant::SI < 6.0) }
        const { assert!(lattice_constant::C < lattice_constant::SI) }
    }
}
