//! The thread-parallel force engine.
//!
//! The paper's single-node results (Fig. 5) combine vectorization *within* a
//! thread with OpenMP parallelism *across* threads. This module supplies the
//! across-threads half for any force field that can compute a contiguous
//! range of atoms independently ([`RangePotential`]):
//!
//! * Local atoms are partitioned into the **fixed chunks** of the shared
//!   [`crate::runtime`] — contiguous index ranges whose boundaries depend
//!   only on the atom count, never on the thread count. Lattice builders
//!   emit atoms in spatial (cell-major) order, so contiguous chunks are also
//!   spatial slabs — the same locality argument as the rank decomposition in
//!   [`crate::domain`], without ghost exchange.
//! * Every chunk accumulates into its **own** full-length force array, so
//!   the conflict-handled scatters of vectorization scheme (1b) never cross
//!   a chunk boundary and no atomics appear in the hot loop.
//! * The per-chunk arrays are then merged by slicing the atom axis across
//!   the participants, each summing its slice over the chunk buffers **in
//!   ascending chunk order**; energy and virial fold the per-chunk partials
//!   in the same order. Fixed chunks + ordered merges make the result
//!   **bitwise identical for every thread count** — 1 thread and 8 threads
//!   produce the same floating-point summation order.
//!
//! The engine does not own threads: it *borrows* a [`ParallelRuntime`] — the
//! one thread owner in the system, shared with neighbor rebuilds, ghost
//! exchange and integration (see [`crate::simulation::SimulationBuilder`]).
//! The steady state is allocation-free: runtime dispatch is a condvar
//! hand-off of a borrowed closure, and per-chunk output buffers plus
//! per-participant scratch are created lazily on the first step and reused
//! for every following one.

use crate::atom::AtomData;
use crate::neighbor::NeighborList;
use crate::potential::{ComputeOutput, Potential};
use crate::runtime::{fixed_chunk_count, DisjointSlice, ParallelRuntime};
use crate::simbox::SimBox;
use std::any::Any;
use std::ops::Range;

pub use crate::runtime::chunk_ranges;

/// A potential whose force computation can be split into independent
/// contiguous ranges of local atoms, with all mutable per-thread state in an
/// opaque scratch object.
///
/// Contract: one step is `prepare` once (single-threaded; builds whatever
/// shared read-only state the kernel needs — filtered neighbor lists, packed
/// positions), then any partition of `0..atoms.n_local` into disjoint ranges
/// may be computed concurrently with `compute_range`, each call adding its
/// contributions (including scatter writes to atoms *outside* its range —
/// neighbors j and k) into its own zeroed [`ComputeOutput`]. Summing the
/// per-range outputs element-wise must reproduce the single-range result up
/// to floating-point reassociation. A scratch may serve several
/// `compute_range` calls within one step (sequentially), so the computed
/// output must not depend on scratch *history* — scratch buffers are
/// overwritten per call, and only associatively-foldable diagnostics
/// accumulate.
pub trait RangePotential: Potential + Send + Sync {
    /// Build the per-step shared state. Implementations reuse internal
    /// buffers so the steady state performs no heap allocation.
    fn prepare(&mut self, atoms: &AtomData, sim_box: &SimBox, neighbors: &NeighborList);

    /// A fresh per-thread scratch object for `compute_range`.
    fn make_scratch(&self) -> Box<dyn Any + Send>;

    /// Compute forces/energy/virial for local atoms in `range`, accumulating
    /// into `out` (zeroed by the caller, sized `atoms.n_total()`).
    fn compute_range(
        &self,
        atoms: &AtomData,
        sim_box: &SimBox,
        neighbors: &NeighborList,
        range: Range<usize>,
        scratch: &mut (dyn Any + Send),
        out: &mut ComputeOutput,
    );

    /// Fold per-thread diagnostics (kernel statistics, fallback counters)
    /// from a scratch back into the potential after a step. Default: nothing.
    fn absorb_scratch(&mut self, _scratch: &mut (dyn Any + Send)) {}
}

/// Forwarding impl so the engine can drive a type-erased potential.
impl Potential for Box<dyn RangePotential> {
    fn name(&self) -> String {
        self.as_ref().name()
    }

    fn cutoff(&self) -> f64 {
        self.as_ref().cutoff()
    }

    fn compute(
        &mut self,
        atoms: &AtomData,
        sim_box: &SimBox,
        neighbors: &NeighborList,
        out: &mut ComputeOutput,
    ) {
        self.as_mut().compute(atoms, sim_box, neighbors, out);
    }

    fn parallel_runtime(&self) -> Option<ParallelRuntime> {
        self.as_ref().parallel_runtime()
    }

    fn bind_runtime(&mut self, runtime: &ParallelRuntime) {
        self.as_mut().bind_runtime(runtime);
    }

    fn executed_backend(&self) -> Option<&'static str> {
        self.as_ref().executed_backend()
    }
}

impl RangePotential for Box<dyn RangePotential> {
    fn prepare(&mut self, atoms: &AtomData, sim_box: &SimBox, neighbors: &NeighborList) {
        self.as_mut().prepare(atoms, sim_box, neighbors);
    }

    fn make_scratch(&self) -> Box<dyn Any + Send> {
        self.as_ref().make_scratch()
    }

    fn compute_range(
        &self,
        atoms: &AtomData,
        sim_box: &SimBox,
        neighbors: &NeighborList,
        range: Range<usize>,
        scratch: &mut (dyn Any + Send),
        out: &mut ComputeOutput,
    ) {
        self.as_ref()
            .compute_range(atoms, sim_box, neighbors, range, scratch, out);
    }

    fn absorb_scratch(&mut self, scratch: &mut (dyn Any + Send)) {
        self.as_mut().absorb_scratch(scratch);
    }
}

// ---------------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------------

/// Multi-threaded [`Potential`] adapter around a [`RangePotential`].
///
/// The engine **borrows** its parallelism: construct it over an existing
/// [`ParallelRuntime`] with [`ForceEngine::with_runtime`] (the
/// [`crate::simulation::SimulationBuilder`] re-binds the simulation's
/// runtime into the potential at build time via
/// [`Potential::bind_runtime`]), or let [`ForceEngine::new`] create a
/// runtime for standalone use. Per-chunk output buffers and per-participant
/// kernel scratch are created lazily on the first `compute` call and reused
/// forever after, so the steady-state step allocates nothing.
///
/// Results are bitwise identical across thread counts: the chunk partition
/// is fixed by the atom count and all reductions fold per-chunk partials in
/// ascending chunk order.
pub struct ForceEngine<P: RangePotential> {
    potential: P,
    runtime: ParallelRuntime,
    /// Per-chunk outputs (one per fixed chunk), reused across steps.
    chunk_out: Vec<ComputeOutput>,
    /// Per-participant kernel scratch, created lazily.
    scratches: Vec<Box<dyn Any + Send>>,
}

impl<P: RangePotential> ForceEngine<P> {
    /// Wrap `potential` over a fresh runtime of `threads` participants
    /// (`0` = one per available CPU). For sharing one runtime across
    /// subsystems, prefer [`ForceEngine::with_runtime`].
    pub fn new(potential: P, threads: usize) -> Self {
        Self::with_runtime(potential, &ParallelRuntime::new(threads))
    }

    /// Wrap `potential`, computing on (a handle to) `runtime`.
    pub fn with_runtime(potential: P, runtime: &ParallelRuntime) -> Self {
        ForceEngine {
            potential,
            runtime: runtime.clone(),
            chunk_out: Vec::new(),
            scratches: Vec::new(),
        }
    }

    /// Number of threads the engine computes with.
    pub fn threads(&self) -> usize {
        self.runtime.threads()
    }

    /// The runtime the engine dispatches through.
    pub fn runtime(&self) -> &ParallelRuntime {
        &self.runtime
    }

    /// The wrapped potential.
    pub fn potential(&self) -> &P {
        &self.potential
    }

    /// Mutable access to the wrapped potential (e.g. to toggle statistics).
    pub fn potential_mut(&mut self) -> &mut P {
        &mut self.potential
    }
}

impl<P: RangePotential> Potential for ForceEngine<P> {
    fn name(&self) -> String {
        let threads = self.runtime.threads();
        if threads == 1 {
            self.potential.name()
        } else {
            format!("{}/t{}", self.potential.name(), threads)
        }
    }

    fn cutoff(&self) -> f64 {
        self.potential.cutoff()
    }

    fn parallel_runtime(&self) -> Option<ParallelRuntime> {
        Some(self.runtime.clone())
    }

    fn bind_runtime(&mut self, runtime: &ParallelRuntime) {
        self.runtime = runtime.clone();
    }

    fn executed_backend(&self) -> Option<&'static str> {
        self.potential.executed_backend()
    }

    fn compute(
        &mut self,
        atoms: &AtomData,
        sim_box: &SimBox,
        neighbors: &NeighborList,
        out: &mut ComputeOutput,
    ) {
        self.potential.prepare(atoms, sim_box, neighbors);
        let n_total = atoms.n_total();
        let n_local = atoms.n_local;
        out.reset(n_total);

        let n_chunks = fixed_chunk_count(n_local);
        let participants = self.runtime.threads();
        while self.scratches.len() < participants {
            self.scratches.push(self.potential.make_scratch());
        }
        while self.chunk_out.len() < n_chunks {
            self.chunk_out.push(ComputeOutput::default());
        }

        let ForceEngine {
            potential,
            runtime,
            chunk_out,
            scratches,
        } = self;

        // Phase 1: every fixed chunk is computed into its own full-length
        // output. Scatter writes to out-of-chunk atoms stay in the chunk's
        // buffer, so no write ever crosses a chunk boundary. Participants
        // process contiguous blocks of chunks; the per-chunk result does not
        // depend on which participant ran it.
        {
            let chunk_out = DisjointSlice::new(chunk_out);
            runtime.par_for(n_local, scratches, |c, range, scratch| {
                // SAFETY: each chunk index is processed by exactly one
                // participant per dispatch.
                let my_out = unsafe { chunk_out.get_mut(c) };
                my_out.reset(n_total);
                potential.compute_range(atoms, sim_box, neighbors, range, scratch.as_mut(), my_out);
            });
        }

        // Phase 2: parallel reduction. Each participant owns one slice of
        // the atom axis and sums the per-chunk buffers over it in ascending
        // chunk order (deterministic for any thread count).
        {
            let chunk_out: &[ComputeOutput] = &chunk_out[..n_chunks];
            runtime.par_slices(&mut out.forces, |range, dst| {
                for chunk in chunk_out {
                    let src = &chunk.forces[range.clone()];
                    for (d, s) in dst.iter_mut().zip(src.iter()) {
                        d[0] += s[0];
                        d[1] += s[1];
                        d[2] += s[2];
                    }
                }
            });
        }

        for chunk in chunk_out.iter().take(n_chunks) {
            out.energy += chunk.energy;
            out.virial += chunk.virial;
            for (dst, src) in out.virial_tensor.iter_mut().zip(chunk.virial_tensor.iter()) {
                *dst += src;
            }
        }
        for scratch in scratches.iter_mut() {
            potential.absorb_scratch(scratch.as_mut());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::Lattice;
    use crate::neighbor::NeighborSettings;
    use crate::pair_lj::LennardJones;
    use crate::runtime::resolve_threads;

    #[test]
    fn threaded_lj_engine_matches_single_thread() {
        let (b, atoms) = Lattice::silicon([3, 3, 3]).build_perturbed(0.04, 9);
        let list = NeighborList::build_binned(&atoms, &b, NeighborSettings::new(4.0, 0.5));

        let mut single = LennardJones::new(0.1, 2.0, 4.0);
        let mut out_single = ComputeOutput::zeros(atoms.n_total());
        single.compute(&atoms, &b, &list, &mut out_single);

        for threads in [1usize, 2, 3, 4, 8] {
            let mut engine = ForceEngine::new(LennardJones::new(0.1, 2.0, 4.0), threads);
            let mut out = ComputeOutput::zeros(atoms.n_total());
            engine.compute(&atoms, &b, &list, &mut out);
            assert!(
                (out.energy - out_single.energy).abs() < 1e-10 * out_single.energy.abs(),
                "threads {threads}: energy {} vs {}",
                out.energy,
                out_single.energy
            );
            assert!(
                out.max_force_difference(&out_single) < 1e-10,
                "threads {threads}: force diff {}",
                out.max_force_difference(&out_single)
            );
            assert!(
                (out.virial - out_single.virial).abs() < 1e-9 * out_single.virial.abs().max(1.0)
            );
        }
    }

    #[test]
    fn engine_is_bitwise_identical_across_thread_counts() {
        // The chunk partition is fixed by the atom count and all merges run
        // in ascending chunk order, so the engine's output must agree to the
        // last bit no matter how many threads compute it.
        let (b, atoms) = Lattice::silicon([3, 3, 3]).build_perturbed(0.05, 3);
        let list = NeighborList::build_binned(&atoms, &b, NeighborSettings::new(4.0, 0.5));
        let mut reference: Option<ComputeOutput> = None;
        for threads in [1usize, 2, 3, 4, 8] {
            let mut engine = ForceEngine::new(LennardJones::new(0.1, 2.0, 4.0), threads);
            let mut out = ComputeOutput::zeros(atoms.n_total());
            engine.compute(&atoms, &b, &list, &mut out);
            match &reference {
                None => reference = Some(out),
                Some(first) => {
                    assert_eq!(first.energy.to_bits(), out.energy.to_bits(), "t{threads}");
                    assert_eq!(first.virial.to_bits(), out.virial.to_bits(), "t{threads}");
                    for (a, bb) in first.forces.iter().zip(out.forces.iter()) {
                        for d in 0..3 {
                            assert_eq!(a[d].to_bits(), bb[d].to_bits(), "t{threads}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn engine_is_deterministic_across_repeated_calls() {
        let (b, atoms) = Lattice::silicon([2, 2, 2]).build_perturbed(0.05, 3);
        let list = NeighborList::build_binned(&atoms, &b, NeighborSettings::new(4.0, 0.5));
        let mut engine = ForceEngine::new(LennardJones::new(0.1, 2.0, 4.0), 4);
        let mut first = ComputeOutput::zeros(atoms.n_total());
        engine.compute(&atoms, &b, &list, &mut first);
        for _ in 0..5 {
            let mut again = ComputeOutput::zeros(atoms.n_total());
            engine.compute(&atoms, &b, &list, &mut again);
            assert_eq!(first.energy.to_bits(), again.energy.to_bits());
            for (a, bb) in first.forces.iter().zip(again.forces.iter()) {
                for d in 0..3 {
                    assert_eq!(a[d].to_bits(), bb[d].to_bits());
                }
            }
        }
    }

    #[test]
    fn engine_reports_threads_in_name() {
        let engine = ForceEngine::new(LennardJones::new(0.1, 2.0, 4.0), 4);
        let expected = resolve_threads(4);
        assert_eq!(engine.threads(), expected);
        if expected > 1 {
            assert!(engine.name().ends_with(&format!("/t{expected}")));
        }
        let auto = ForceEngine::new(LennardJones::new(0.1, 2.0, 4.0), 0);
        assert!(auto.threads() >= 1);
        assert!(auto.parallel_runtime().is_some());
    }

    #[test]
    fn bind_runtime_switches_the_engine_onto_a_shared_pool() {
        let rt = ParallelRuntime::new(3);
        let mut engine = ForceEngine::new(LennardJones::new(0.1, 2.0, 4.0), 1);
        engine.bind_runtime(&rt);
        assert_eq!(engine.threads(), rt.threads());
        let (b, atoms) = Lattice::silicon([2, 2, 2]).build_perturbed(0.03, 1);
        let list = NeighborList::build_binned(&atoms, &b, NeighborSettings::new(4.0, 0.5));
        let mut out = ComputeOutput::zeros(atoms.n_total());
        engine.compute(&atoms, &b, &list, &mut out);
        assert!(out.energy != 0.0);
    }
}
