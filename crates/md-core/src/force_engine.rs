//! The thread-parallel force engine.
//!
//! The paper's single-node results (Fig. 5) combine vectorization *within* a
//! thread with OpenMP parallelism *across* threads. This module supplies the
//! across-threads half for any force field that can compute a contiguous
//! range of atoms independently ([`RangePotential`]):
//!
//! * Local atoms are partitioned into one contiguous chunk per thread.
//!   Lattice builders emit atoms in spatial (cell-major) order, so contiguous
//!   index chunks are also spatial slabs — the same locality argument as the
//!   rank decomposition in [`crate::decomposition`], without ghost exchange.
//! * Every thread accumulates into its **own** full-length force array, so
//!   the conflict-handled scatters of vectorization scheme (1b) never cross a
//!   thread boundary and no atomics appear in the hot loop.
//! * The per-thread arrays are then merged by slicing the atom range across
//!   the same threads (each thread sums one slice over all per-thread
//!   arrays), which keeps the reduction parallel and deterministic: chunk
//!   buffers are added in fixed chunk order, independent of scheduling.
//!
//! The engine is built for an **allocation-free steady state**: workers are
//! spawned once and re-dispatched through a [`WorkerPool`] (a condvar
//! hand-off, not a channel, so dispatching a step performs no heap
//! allocation), per-thread scratch and output buffers are created lazily on
//! the first step and reused for every following one.

use crate::atom::AtomData;
use crate::neighbor::NeighborList;
use crate::potential::{ComputeOutput, Potential};
use crate::simbox::SimBox;
use std::any::Any;
use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A potential whose force computation can be split into independent
/// contiguous ranges of local atoms, with all mutable per-thread state in an
/// opaque scratch object.
///
/// Contract: one step is `prepare` once (single-threaded; builds whatever
/// shared read-only state the kernel needs — filtered neighbor lists, packed
/// positions), then any partition of `0..atoms.n_local` into disjoint ranges
/// may be computed concurrently with `compute_range`, each call adding its
/// contributions (including scatter writes to atoms *outside* its range —
/// neighbors j and k) into its own zeroed [`ComputeOutput`]. Summing the
/// per-range outputs element-wise must reproduce the single-range result up
/// to floating-point reassociation.
pub trait RangePotential: Potential + Send + Sync {
    /// Build the per-step shared state. Implementations reuse internal
    /// buffers so the steady state performs no heap allocation.
    fn prepare(&mut self, atoms: &AtomData, sim_box: &SimBox, neighbors: &NeighborList);

    /// A fresh per-thread scratch object for `compute_range`.
    fn make_scratch(&self) -> Box<dyn Any + Send>;

    /// Compute forces/energy/virial for local atoms in `range`, accumulating
    /// into `out` (zeroed by the caller, sized `atoms.n_total()`).
    fn compute_range(
        &self,
        atoms: &AtomData,
        sim_box: &SimBox,
        neighbors: &NeighborList,
        range: Range<usize>,
        scratch: &mut (dyn Any + Send),
        out: &mut ComputeOutput,
    );

    /// Fold per-thread diagnostics (kernel statistics, fallback counters)
    /// from a scratch back into the potential after a step. Default: nothing.
    fn absorb_scratch(&mut self, _scratch: &mut (dyn Any + Send)) {}
}

/// Forwarding impl so the engine can drive a type-erased potential.
impl Potential for Box<dyn RangePotential> {
    fn name(&self) -> String {
        self.as_ref().name()
    }

    fn cutoff(&self) -> f64 {
        self.as_ref().cutoff()
    }

    fn compute(
        &mut self,
        atoms: &AtomData,
        sim_box: &SimBox,
        neighbors: &NeighborList,
        out: &mut ComputeOutput,
    ) {
        self.as_mut().compute(atoms, sim_box, neighbors, out);
    }
}

impl RangePotential for Box<dyn RangePotential> {
    fn prepare(&mut self, atoms: &AtomData, sim_box: &SimBox, neighbors: &NeighborList) {
        self.as_mut().prepare(atoms, sim_box, neighbors);
    }

    fn make_scratch(&self) -> Box<dyn Any + Send> {
        self.as_ref().make_scratch()
    }

    fn compute_range(
        &self,
        atoms: &AtomData,
        sim_box: &SimBox,
        neighbors: &NeighborList,
        range: Range<usize>,
        scratch: &mut (dyn Any + Send),
        out: &mut ComputeOutput,
    ) {
        self.as_ref()
            .compute_range(atoms, sim_box, neighbors, range, scratch, out);
    }

    fn absorb_scratch(&mut self, scratch: &mut (dyn Any + Send)) {
        self.as_mut().absorb_scratch(scratch);
    }
}

/// Balanced contiguous partition of `0..n` into `parts` ranges. The first
/// `n % parts` ranges are one element longer.
pub fn chunk_ranges(n: usize, parts: usize) -> impl Iterator<Item = Range<usize>> {
    let parts = parts.max(1);
    let base = n / parts;
    let extra = n % parts;
    (0..parts).map(move |p| {
        let lo = p * base + p.min(extra);
        let hi = lo + base + usize::from(p < extra);
        lo..hi
    })
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

/// Type-erased job pointer handed to workers. The lifetime is erased; safety
/// comes from [`WorkerPool::run`] not returning until every worker has
/// finished with it.
#[derive(Copy, Clone)]
struct Job(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (callable from any thread through `&`), and
// the dispatch protocol guarantees it outlives all worker accesses.
unsafe impl Send for Job {}

struct PoolState {
    /// Bumped once per dispatched job; workers run when it changes.
    epoch: u64,
    /// The current job, valid while `active > 0`.
    job: Option<Job>,
    /// Workers still running the current epoch.
    active: usize,
    /// Tells workers to exit.
    shutdown: bool,
    /// Set when a worker's job panicked.
    poisoned: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    go: Condvar,
    done: Condvar,
}

/// A persistent team of worker threads with allocation-free job dispatch.
///
/// `run(f)` makes every participant — the calling thread plus each worker —
/// invoke `f(participant_index)` exactly once, then blocks until all are
/// done. Dispatch is a mutex/condvar hand-off of a borrowed closure pointer:
/// no boxing, no channels, no per-step heap traffic.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `workers` background threads (participant indices `1..=workers`;
    /// index 0 is the thread that calls [`WorkerPool::run`]).
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                active: 0,
                shutdown: false,
                poisoned: false,
            }),
            go: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (1..=workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("force-engine-{index}"))
                    .spawn(move || worker_loop(&shared, index))
                    .expect("failed to spawn force-engine worker")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Number of participants (`workers + 1` for the caller).
    pub fn participants(&self) -> usize {
        self.handles.len() + 1
    }

    /// Run `f(i)` once for every participant index `i` in
    /// `0..participants()`, with index 0 executed on the calling thread.
    ///
    /// Takes `&mut self` deliberately: exclusive access makes overlapping
    /// dispatches — which would race the shared job slot and could leave a
    /// worker holding a dangling closure pointer — unrepresentable in safe
    /// code.
    pub fn run(&mut self, f: &(dyn Fn(usize) + Sync)) {
        // SAFETY: erase the borrow lifetime; `run` does not return until
        // `active == 0`, so no worker touches the pointer afterwards, and
        // `&mut self` guarantees no second dispatch overlaps this one.
        let job = Job(unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(
                f as *const _,
            )
        });
        {
            let mut st = self.shared.state.lock().unwrap();
            debug_assert_eq!(st.active, 0, "pool dispatched while busy");
            st.job = Some(job);
            st.active = self.handles.len();
            st.epoch += 1;
            self.shared.go.notify_all();
        }

        // The caller is participant 0.
        let caller_panic = panic::catch_unwind(AssertUnwindSafe(|| f(0)));

        let mut st = self.shared.state.lock().unwrap();
        while st.active != 0 {
            st = self.shared.done.wait(st).unwrap();
        }
        st.job = None;
        let poisoned = std::mem::replace(&mut st.poisoned, false);
        drop(st);
        if let Err(e) = caller_panic {
            panic::resume_unwind(e);
        }
        if poisoned {
            panic!("a force-engine worker panicked during the parallel section");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.go.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, index: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    break st.job.expect("job set when epoch advances");
                }
                st = shared.go.wait(st).unwrap();
            }
        };
        // SAFETY: the dispatcher keeps the closure alive until `active == 0`.
        let f = unsafe { &*job.0 };
        let result = panic::catch_unwind(AssertUnwindSafe(|| f(index)));
        let mut st = shared.state.lock().unwrap();
        if result.is_err() {
            st.poisoned = true;
        }
        st.active -= 1;
        if st.active == 0 {
            shared.done.notify_one();
        }
    }
}

// ---------------------------------------------------------------------------
// Disjoint-access helpers
// ---------------------------------------------------------------------------

/// Shared mutable access to the elements of a slice under the *caller's*
/// guarantee that concurrent accesses use disjoint indices/ranges.
struct DisjointSlice<T> {
    ptr: *mut T,
    len: usize,
}

// SAFETY: access discipline (disjoint indices) is enforced by the engine.
unsafe impl<T: Send> Sync for DisjointSlice<T> {}

impl<T> DisjointSlice<T> {
    fn new(slice: &mut [T]) -> Self {
        DisjointSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
        }
    }

    /// # Safety
    /// `index < len` and no concurrent access to the same index.
    // The `&self -> &mut` shape is the whole point of this wrapper: the
    // engine hands workers aliasing-free access to distinct elements.
    #[allow(clippy::mut_from_ref)]
    unsafe fn get_mut(&self, index: usize) -> &mut T {
        debug_assert!(index < self.len);
        &mut *self.ptr.add(index)
    }

    /// # Safety
    /// `range` in bounds and no concurrent access to overlapping ranges.
    #[allow(clippy::mut_from_ref)]
    unsafe fn slice_mut(&self, range: Range<usize>) -> &mut [T] {
        debug_assert!(range.start <= range.end && range.end <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(range.start), range.len())
    }
}

// ---------------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------------

/// Multi-threaded [`Potential`] adapter around a [`RangePotential`].
///
/// With `threads == 1` the engine is a zero-overhead pass-through (no pool,
/// no extra buffers). With more threads it spawns a persistent worker pool on
/// the first `compute` call and reuses per-thread scratch/output buffers
/// forever after, so the steady-state step allocates nothing.
pub struct ForceEngine<P: RangePotential> {
    potential: P,
    threads: usize,
    pool: Option<WorkerPool>,
    /// Per-chunk outputs (one per participant), reused across steps.
    chunk_out: Vec<ComputeOutput>,
    /// Per-participant kernel scratch, created lazily.
    scratches: Vec<Box<dyn Any + Send>>,
    /// Chunk ranges of the current step, reused across steps.
    ranges: Vec<Range<usize>>,
}

impl<P: RangePotential> ForceEngine<P> {
    /// Wrap `potential`, running on `threads` threads (`0` = one per
    /// available CPU).
    pub fn new(potential: P, threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        ForceEngine {
            potential,
            threads,
            pool: None,
            chunk_out: Vec::new(),
            scratches: Vec::new(),
            ranges: Vec::new(),
        }
    }

    /// Number of threads the engine computes with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The wrapped potential.
    pub fn potential(&self) -> &P {
        &self.potential
    }

    /// Mutable access to the wrapped potential (e.g. to toggle statistics).
    pub fn potential_mut(&mut self) -> &mut P {
        &mut self.potential
    }

    fn ensure_workers(&mut self) {
        if self.pool.is_none() {
            self.pool = Some(WorkerPool::new(self.threads - 1));
        }
        while self.scratches.len() < self.threads {
            self.scratches.push(self.potential.make_scratch());
        }
        while self.chunk_out.len() < self.threads {
            self.chunk_out.push(ComputeOutput::default());
        }
    }
}

impl<P: RangePotential> Potential for ForceEngine<P> {
    fn name(&self) -> String {
        format!("{}/t{}", self.potential.name(), self.threads)
    }

    fn cutoff(&self) -> f64 {
        self.potential.cutoff()
    }

    fn compute(
        &mut self,
        atoms: &AtomData,
        sim_box: &SimBox,
        neighbors: &NeighborList,
        out: &mut ComputeOutput,
    ) {
        self.potential.prepare(atoms, sim_box, neighbors);
        let n_total = atoms.n_total();
        let n_local = atoms.n_local;
        out.reset(n_total);

        if self.threads == 1 {
            if self.scratches.is_empty() {
                self.scratches.push(self.potential.make_scratch());
            }
            let scratch = &mut self.scratches[0];
            self.potential.compute_range(
                atoms,
                sim_box,
                neighbors,
                0..n_local,
                scratch.as_mut(),
                out,
            );
            self.potential.absorb_scratch(scratch.as_mut());
            return;
        }

        self.ensure_workers();
        self.ranges.clear();
        self.ranges.extend(chunk_ranges(n_local, self.threads));

        let threads = self.threads;
        let pool = self.pool.as_mut().expect("pool exists after ensure");
        let potential = &self.potential;
        let ranges = &self.ranges;

        // Phase 1: every participant computes its own chunk into its own
        // full-length output. Scatter writes to out-of-chunk atoms stay in
        // the per-thread buffer, so no write ever crosses a thread boundary.
        {
            let chunk_out = DisjointSlice::new(&mut self.chunk_out);
            let scratches = DisjointSlice::new(&mut self.scratches);
            pool.run(&|who| {
                // SAFETY: each participant index is used by exactly one
                // thread per dispatch.
                let my_out = unsafe { chunk_out.get_mut(who) };
                let my_scratch = unsafe { scratches.get_mut(who) };
                my_out.reset(n_total);
                potential.compute_range(
                    atoms,
                    sim_box,
                    neighbors,
                    ranges[who].clone(),
                    my_scratch.as_mut(),
                    my_out,
                );
            });
        }

        // Phase 2: parallel reduction. Each participant owns one slice of the
        // atom axis and sums the per-chunk buffers over it in fixed chunk
        // order (deterministic for a given thread count).
        {
            let chunk_out: &[ComputeOutput] = &self.chunk_out;
            let forces = DisjointSlice::new(&mut out.forces);
            pool.run(&|who| {
                let mut lo = 0usize;
                let mut hi = 0usize;
                for (idx, r) in chunk_ranges(n_total, threads).enumerate() {
                    if idx == who {
                        lo = r.start;
                        hi = r.end;
                        break;
                    }
                }
                // SAFETY: slices are disjoint across participants.
                let dst = unsafe { forces.slice_mut(lo..hi) };
                for chunk in chunk_out.iter().take(threads) {
                    let src = &chunk.forces[lo..hi];
                    for (d, s) in dst.iter_mut().zip(src.iter()) {
                        d[0] += s[0];
                        d[1] += s[1];
                        d[2] += s[2];
                    }
                }
            });
        }

        for chunk in self.chunk_out.iter().take(threads) {
            out.energy += chunk.energy;
            out.virial += chunk.virial;
        }
        for scratch in self.scratches.iter_mut().take(threads) {
            self.potential.absorb_scratch(scratch.as_mut());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::Lattice;
    use crate::neighbor::NeighborSettings;
    use crate::pair_lj::LennardJones;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunk_ranges_cover_everything_exactly_once() {
        for n in [0usize, 1, 7, 64, 1000] {
            for parts in [1usize, 2, 3, 4, 8, 13] {
                let ranges: Vec<_> = chunk_ranges(n, parts).collect();
                assert_eq!(ranges.len(), parts);
                assert_eq!(ranges.first().unwrap().start, 0);
                assert_eq!(ranges.last().unwrap().end, n);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                }
                let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                let min = sizes.iter().min().unwrap();
                let max = sizes.iter().max().unwrap();
                assert!(max - min <= 1, "unbalanced: {sizes:?}");
            }
        }
    }

    #[test]
    fn pool_runs_every_participant_exactly_once() {
        let mut pool = WorkerPool::new(3);
        assert_eq!(pool.participants(), 4);
        let counts: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        for _ in 0..100 {
            pool.run(&|who| {
                counts[who].fetch_add(1, Ordering::Relaxed);
            });
        }
        for c in &counts {
            assert_eq!(c.load(Ordering::Relaxed), 100);
        }
    }

    #[test]
    fn pool_propagates_worker_panics() {
        let mut pool = WorkerPool::new(2);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|who| {
                if who == 2 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool stays usable after a poisoned dispatch.
        let hits = AtomicUsize::new(0);
        pool.run(&|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn threaded_lj_engine_matches_single_thread() {
        let (b, atoms) = Lattice::silicon([3, 3, 3]).build_perturbed(0.04, 9);
        let list = NeighborList::build_binned(&atoms, &b, NeighborSettings::new(4.0, 0.5));

        let mut single = LennardJones::new(0.1, 2.0, 4.0);
        let mut out_single = ComputeOutput::zeros(atoms.n_total());
        single.compute(&atoms, &b, &list, &mut out_single);

        for threads in [1usize, 2, 3, 4, 8] {
            let mut engine = ForceEngine::new(LennardJones::new(0.1, 2.0, 4.0), threads);
            let mut out = ComputeOutput::zeros(atoms.n_total());
            engine.compute(&atoms, &b, &list, &mut out);
            assert!(
                (out.energy - out_single.energy).abs() < 1e-10 * out_single.energy.abs(),
                "threads {threads}: energy {} vs {}",
                out.energy,
                out_single.energy
            );
            assert!(
                out.max_force_difference(&out_single) < 1e-10,
                "threads {threads}: force diff {}",
                out.max_force_difference(&out_single)
            );
            assert!(
                (out.virial - out_single.virial).abs() < 1e-9 * out_single.virial.abs().max(1.0)
            );
        }
    }

    #[test]
    fn engine_is_deterministic_across_repeated_calls() {
        let (b, atoms) = Lattice::silicon([2, 2, 2]).build_perturbed(0.05, 3);
        let list = NeighborList::build_binned(&atoms, &b, NeighborSettings::new(4.0, 0.5));
        let mut engine = ForceEngine::new(LennardJones::new(0.1, 2.0, 4.0), 4);
        let mut first = ComputeOutput::zeros(atoms.n_total());
        engine.compute(&atoms, &b, &list, &mut first);
        for _ in 0..5 {
            let mut again = ComputeOutput::zeros(atoms.n_total());
            engine.compute(&atoms, &b, &list, &mut again);
            assert_eq!(first.energy.to_bits(), again.energy.to_bits());
            for (a, bb) in first.forces.iter().zip(again.forces.iter()) {
                for d in 0..3 {
                    assert_eq!(a[d].to_bits(), bb[d].to_bits());
                }
            }
        }
    }

    #[test]
    fn engine_reports_threads_in_name() {
        let engine = ForceEngine::new(LennardJones::new(0.1, 2.0, 4.0), 4);
        assert!(engine.name().ends_with("/t4"));
        assert_eq!(engine.threads(), 4);
        let auto = ForceEngine::new(LennardJones::new(0.1, 2.0, 4.0), 0);
        assert!(auto.threads() >= 1);
    }
}
