//! The rank-parallel distributed timestep.
//!
//! [`DomainSimulation`] owns a canonical [`Simulation`] plus N rank
//! domains and drives a complete decomposed step: per-rank velocity-Verlet
//! integration over owned atoms, halo position refresh, atom migration and
//! ghost re-exchange at re-neighboring, genuinely per-rank neighbor-list
//! builds, and force computation — with ranks executing concurrently on
//! the shared [`ParallelRuntime`].
//!
//! ## The bitwise contract
//!
//! A decomposed run produces **bit-for-bit** the thermo trace, trajectory
//! and final state of the single-domain [`Simulation`], for any grid at
//! any thread count. The discipline (continuing PR 4's fixed-chunk rule)
//! is: *every floating-point reduction runs in canonical form, and the
//! rank layer only ever produces data whose value is independent of the
//! partition*:
//!
//! - **Integration** is per-atom arithmetic with no cross-atom reduction,
//!   so each rank integrating its owned rows — concurrently, through a
//!   [`DisjointSlice`] over the canonical arrays — produces the exact bits
//!   of the canonical loop.
//! - **Forces** merge per-chunk scatter buffers in a fixed chunk order
//!   derived from the *global* atom count; any per-rank regrouping would
//!   change summation order. The decomposed step therefore runs the same
//!   canonical force pass, unchanged, over the canonically ordered list.
//! - **Neighbor lists** are where the ranks do real distributed work: each
//!   rank builds a genuine local list over its packed owned+ghost atoms
//!   with a slightly *padded* cutoff, and the canonical list is then
//!   assembled by re-filtering every candidate with the exact single-domain
//!   predicate (`sim_box.distance_sq(x[i], x[j]) <= (cutoff+skin)²`),
//!   sorted ascending and deduplicated (periodic images collapse onto one
//!   canonical row entry). The padding absorbs the ulp-level difference
//!   between the rank's plain-difference distances on shifted ghost images
//!   and the canonical minimum-image distances, making the candidate set a
//!   guaranteed superset — and the canonical filter then reproduces the
//!   single-domain list bit for bit, entry for entry.
//! - **Rebuild cadence** is decided by the canonical half-skin test on the
//!   canonical positions, so rebuilds (and hence everything downstream)
//!   happen at the same steps as single-domain runs.
//!
//! ## Rank lifecycle
//!
//! Construction partitions atoms by [`DomainGrid::locate`], then primes
//! each rank: ghost plans are built ([`HaloExchange`]), ghosts imported,
//! and per-rank lists built. Every step the ranks integrate their rows and
//! receive a position refresh for their planned ghosts; at re-neighboring,
//! leavers migrate to their new owner (count-conserving, order-restoring),
//! plans are rebuilt from the current positions, ghosts are re-imported
//! and the per-rank lists rebuilt and re-assembled. All rank phases are
//! dispatched with `par_parts(n_ranks)` so ranks run concurrently wherever
//! the runtime has threads, and every phase writes values that depend only
//! on the canonical state — never on which participant ran which rank.

use crate::atom::AtomData;
use crate::domain::grid::{DomainGrid, GridError};
use crate::domain::halo::HaloExchange;
use crate::integrate::VelocityVerlet;
use crate::neighbor::{NeighborList, NeighborSettings};
use crate::observer::RunReport;
use crate::potential::Potential;
use crate::runtime::{DisjointSlice, ParallelRuntime};
use crate::simbox::SimBox;
use crate::simulation::{BuildError, RunError, Simulation, SimulationBuilder};
use crate::timer::Stage;
use std::fmt;

/// Padding (Å) added to the rank-local build cutoff and the halo import
/// distance. Rank-local candidate distances are plain differences against
/// shifted ghost images; the canonical filter uses minimum-image
/// arithmetic. The two differ by floating-point rounding only (≪ 1e-9 Å),
/// so this comfortably guarantees the rank candidate set is a superset of
/// the canonical neighbor set.
const HALO_PAD: f64 = 1e-6;

/// Why a [`DomainSimulation`] refused to build.
#[derive(Debug)]
pub enum DomainBuildError {
    /// The decomposition grid is invalid for this box and potential.
    Grid(GridError),
    /// The underlying simulation configuration is invalid.
    Simulation(BuildError),
}

impl fmt::Display for DomainBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DomainBuildError::Grid(e) => e.fmt(f),
            DomainBuildError::Simulation(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for DomainBuildError {}

impl From<GridError> for DomainBuildError {
    fn from(e: GridError) -> Self {
        DomainBuildError::Grid(e)
    }
}

impl From<BuildError> for DomainBuildError {
    fn from(e: BuildError) -> Self {
        DomainBuildError::Simulation(e)
    }
}

/// Per-rank state: the packed local+ghost atom workspace, the rank's own
/// neighbor list, and reusable scratch. Everything here is rebuilt from
/// canonical state at re-neighboring and refreshed (positions only)
/// between rebuilds; buffers are retained so the steady-state step
/// allocates nothing.
struct RankDomain {
    /// Packed atoms: this rank's owned atoms (ascending canonical order),
    /// then its imported ghosts (source-rank order).
    atoms: AtomData,
    /// Canonical row of each ghost, parallel to the ghost tail of `atoms`.
    ghost_src: Vec<usize>,
    /// The rank's own neighbor list over the packed atoms (padded cutoff).
    list: NeighborList,
    /// Inline executor for this rank's list builds: a one-participant
    /// runtime runs the build on whichever worker owns the rank, so rank
    /// builds nest safely inside the shared runtime's rank dispatch.
    serial: ParallelRuntime,
    /// Assembly scratch: concatenated canonical-row candidates
    /// (filtered/sorted/deduplicated) and per-owned-atom row lengths.
    row_gids: Vec<usize>,
    row_counts: Vec<usize>,
}

impl RankDomain {
    fn new() -> Self {
        RankDomain {
            atoms: AtomData::new(),
            ghost_src: Vec::new(),
            list: NeighborList::default(),
            serial: ParallelRuntime::serial(),
            row_gids: Vec::new(),
            row_counts: Vec::new(),
        }
    }
}

/// The decomposition state driven alongside the canonical [`Simulation`].
struct Shard {
    grid: DomainGrid,
    /// Per-rank subdomain boxes (row-major rank order).
    domains: Vec<SimBox>,
    /// Per-rank owned canonical rows, ascending.
    owned: Vec<Vec<usize>>,
    /// Migration scratch: per-rank stayers and the `src × dst` matrix of
    /// leavers (row-major, `src * n_ranks + dst`).
    stay: Vec<Vec<usize>>,
    migrate_out: Vec<Vec<usize>>,
    /// Owner map: canonical row → (rank, slot in that rank's owned list).
    owner_of: Vec<(u32, u32)>,
    ranks: Vec<RankDomain>,
    halo: HaloExchange,
    /// Canonical neighbor settings — the single-domain build cutoff that
    /// the assembly filter reproduces exactly.
    canon_settings: NeighborSettings,
    /// Padded settings for the rank-local candidate builds.
    rank_settings: NeighborSettings,
    /// Ghost import distance: rank build cutoff plus padding.
    halo_dist: f64,
    /// Total atoms that changed owner over the run.
    migrations: u64,
}

impl Shard {
    /// One decomposed timestep. Mirrors `Simulation::advance_one_step`
    /// phase for phase; only the *execution* of each phase is rank-shaped.
    fn step<P: Potential>(&mut self, sim: &mut Simulation<P>) {
        sim.begin_step();

        self.integrate_initial(sim);
        self.refresh_halo(sim);

        if sim.neighbors.needs_rebuild(&sim.atoms, &sim.sim_box) {
            self.migrate(sim);
            self.exchange_ghosts(sim);
            self.rebuild_rank_lists(sim);
            self.assemble_canonical_list(sim);
            sim.n_rebuilds += 1;
            sim.notify_rebuild();
        }

        sim.compute_forces();
        self.integrate_final(sim);

        sim.end_step();
    }

    /// First velocity-Verlet half step: each rank kicks and drifts its
    /// owned rows of the canonical arrays. Per-atom arithmetic — identical
    /// bits to the canonical loop under any partition.
    fn integrate_initial<P: Potential>(&self, sim: &mut Simulation<P>) {
        let n_ranks = self.ranks.len();
        let owned = &self.owned;
        let Simulation {
            atoms,
            sim_box,
            integrator,
            masses,
            runtime,
            timers,
            ..
        } = sim;
        let n = atoms.n_local;
        let sim_box: &SimBox = sim_box;
        let integrator: &VelocityVerlet = integrator;
        let masses: &[f64] = masses;
        let runtime: &ParallelRuntime = runtime;
        timers.time(Stage::Integrate, || {
            let AtomData { x, v, f, type_, .. } = &mut *atoms;
            let xs = DisjointSlice::new(&mut x[..n]);
            let vs = DisjointSlice::new(&mut v[..n]);
            let f: &[[f64; 3]] = f;
            let type_: &[usize] = type_;
            runtime.par_parts(n_ranks, |ranks| {
                for r in ranks {
                    // SAFETY: ownership partitions the rows — each canonical
                    // row appears in exactly one rank's owned list.
                    unsafe {
                        integrator
                            .initial_integrate_rows(&xs, &vs, f, type_, masses, sim_box, &owned[r]);
                    }
                }
            });
        });
    }

    /// Second half step (velocity kick only), rank-partitioned like
    /// [`Shard::integrate_initial`].
    fn integrate_final<P: Potential>(&self, sim: &mut Simulation<P>) {
        let n_ranks = self.ranks.len();
        let owned = &self.owned;
        let Simulation {
            atoms,
            integrator,
            masses,
            runtime,
            timers,
            ..
        } = sim;
        let n = atoms.n_local;
        let integrator: &VelocityVerlet = integrator;
        let masses: &[f64] = masses;
        let runtime: &ParallelRuntime = runtime;
        timers.time(Stage::Integrate, || {
            let AtomData { v, f, type_, .. } = &mut *atoms;
            let vs = DisjointSlice::new(&mut v[..n]);
            let f: &[[f64; 3]] = f;
            let type_: &[usize] = type_;
            runtime.par_parts(n_ranks, |ranks| {
                for r in ranks {
                    // SAFETY: disjoint owned rows, as above.
                    unsafe {
                        integrator.final_integrate_rows(&vs, f, type_, masses, &owned[r]);
                    }
                }
            });
        });
    }

    /// Per-step halo traffic: every source rank packs the current positions
    /// of its planned exports into refresh messages, then every destination
    /// rank copies its owned rows and received ghost positions into its
    /// packed workspace. No-op until the first plans exist.
    fn refresh_halo<P: Potential>(&mut self, sim: &mut Simulation<P>) {
        if !self.halo.planned() {
            return;
        }
        let Shard {
            halo, ranks, owned, ..
        } = self;
        let n_ranks = ranks.len();
        let Simulation {
            atoms,
            runtime,
            timers,
            ..
        } = sim;
        let runtime: &ParallelRuntime = runtime;
        timers.time(Stage::Comm, || {
            // Send: pack refresh messages (rank-parallel over sources).
            halo.refresh_positions(runtime, &atoms.x);
            // Receive: apply to the packed rank workspaces.
            let halo: &HaloExchange = halo;
            let owned: &[Vec<usize>] = owned;
            let x = &atoms.x;
            let rs = DisjointSlice::new(ranks);
            runtime.par_parts(n_ranks, |dsts| {
                for dst in dsts {
                    // SAFETY: one participant per destination rank.
                    let r = unsafe { rs.get_mut(dst) };
                    for (slot, &gid) in owned[dst].iter().enumerate() {
                        r.atoms.x[slot] = x[gid];
                    }
                    let mut cursor = r.atoms.n_local;
                    for src in 0..n_ranks {
                        for &p in halo.refreshed(src, dst) {
                            r.atoms.x[cursor] = p;
                            cursor += 1;
                        }
                    }
                    debug_assert_eq!(cursor, r.atoms.n_total());
                }
            });
        });
    }

    /// Transfer ownership of atoms that crossed a rank boundary. Three
    /// rank-parallel phases — leaver detection, destination-side merge
    /// (sorted, so owned lists stay ascending), owner-map rebuild — each
    /// writing partition-independent values. Conserves the atom count or
    /// panics.
    fn migrate<P: Potential>(&mut self, sim: &mut Simulation<P>) {
        let Shard {
            grid,
            owned,
            stay,
            migrate_out,
            owner_of,
            migrations,
            ..
        } = self;
        let n_ranks = grid.n_ranks();
        let grid: &DomainGrid = grid;
        let Simulation {
            atoms,
            sim_box,
            runtime,
            timers,
            ..
        } = sim;
        let sim_box: &SimBox = sim_box;
        let runtime: &ParallelRuntime = runtime;
        let x = &atoms.x;
        timers.time(Stage::Migrate, || {
            // Phase 1: each rank splits its owned atoms into stayers and
            // per-destination leavers.
            {
                let owned: &[Vec<usize>] = owned;
                let stays = DisjointSlice::new(stay);
                let outs = DisjointSlice::new(migrate_out);
                runtime.par_parts(n_ranks, |srcs| {
                    for src in srcs {
                        // SAFETY: each participant handles distinct source
                        // ranks; `stay[src]` and row `src` of the matrix
                        // belong to it alone.
                        let st = unsafe { stays.get_mut(src) };
                        let out_row = unsafe { outs.slice_mut(src * n_ranks..(src + 1) * n_ranks) };
                        st.clear();
                        for o in out_row.iter_mut() {
                            o.clear();
                        }
                        for &gid in &owned[src] {
                            let dst = grid.locate(sim_box, x[gid]);
                            if dst == src {
                                st.push(gid);
                            } else {
                                out_row[dst].push(gid);
                            }
                        }
                    }
                });
            }
            let moved: usize = (0..n_ranks)
                .flat_map(|src| (0..n_ranks).map(move |dst| (src, dst)))
                .filter(|&(src, dst)| src != dst)
                .map(|(src, dst)| migrate_out[src * n_ranks + dst].len())
                .sum();
            *migrations += moved as u64;

            // Phase 2: each destination merges stayers and arrivals and
            // restores ascending canonical order.
            {
                let stay: &[Vec<usize>] = stay;
                let outs: &[Vec<usize>] = migrate_out;
                let owns = DisjointSlice::new(owned);
                runtime.par_parts(n_ranks, |dsts| {
                    for dst in dsts {
                        // SAFETY: one participant per destination rank.
                        let od = unsafe { owns.get_mut(dst) };
                        od.clear();
                        od.extend_from_slice(&stay[dst]);
                        for src in 0..n_ranks {
                            if src != dst {
                                od.extend_from_slice(&outs[src * n_ranks + dst]);
                            }
                        }
                        od.sort_unstable();
                    }
                });
            }
            let total: usize = owned.iter().map(|o| o.len()).sum();
            assert_eq!(
                total, atoms.n_local,
                "atom migration lost or duplicated atoms"
            );

            // Phase 3: rebuild the owner map from the new owned lists.
            {
                let owned: &[Vec<usize>] = owned;
                let owners = DisjointSlice::new(owner_of);
                runtime.par_parts(n_ranks, |dsts| {
                    for dst in dsts {
                        for (slot, &gid) in owned[dst].iter().enumerate() {
                            // SAFETY: each canonical row is owned by exactly
                            // one rank post-migration.
                            unsafe { *owners.get_mut(gid) = (dst as u32, slot as u32) };
                        }
                    }
                });
            }
        });
    }

    /// Rebuild ghost plans from current positions and re-import ghosts:
    /// the send side fills the plan mailboxes (see [`HaloExchange`]), the
    /// receive side repacks each rank's atom workspace — owned atoms in
    /// ascending canonical order, then ghosts in (source rank, plan) order.
    fn exchange_ghosts<P: Potential>(&mut self, sim: &mut Simulation<P>) {
        let Shard {
            halo,
            ranks,
            owned,
            domains,
            halo_dist,
            ..
        } = self;
        let n_ranks = ranks.len();
        let halo_dist = *halo_dist;
        let Simulation {
            atoms,
            sim_box,
            runtime,
            timers,
            ..
        } = sim;
        let runtime: &ParallelRuntime = runtime;
        timers.time(Stage::Comm, || {
            halo.build_plans(
                runtime,
                sim_box,
                halo_dist,
                &atoms.x,
                &atoms.type_,
                &atoms.id,
                owned,
                domains,
            );
            let halo: &HaloExchange = halo;
            let owned: &[Vec<usize>] = owned;
            let AtomData {
                x, v, type_, id, ..
            } = &*atoms;
            let rs = DisjointSlice::new(ranks);
            runtime.par_parts(n_ranks, |dsts| {
                for dst in dsts {
                    // SAFETY: one participant per destination rank.
                    let r = unsafe { rs.get_mut(dst) };
                    let ra = &mut r.atoms;
                    ra.x.clear();
                    ra.v.clear();
                    ra.f.clear();
                    ra.type_.clear();
                    ra.id.clear();
                    ra.n_local = 0;
                    for &gid in &owned[dst] {
                        ra.push_local(x[gid], v[gid], type_[gid], id[gid]);
                    }
                    r.ghost_src.clear();
                    for src in 0..n_ranks {
                        for g in halo.plan(src, dst) {
                            ra.push_ghost(g.x, g.type_, g.id);
                            r.ghost_src.push(g.index);
                        }
                    }
                }
            });
        });
    }

    /// Every rank rebuilds its own neighbor list over its packed atoms with
    /// the padded cutoff — genuine distributed list construction, ranks
    /// concurrent, each build running inline on its rank's one-participant
    /// runtime.
    fn rebuild_rank_lists<P: Potential>(&mut self, sim: &mut Simulation<P>) {
        let Shard {
            ranks,
            rank_settings,
            ..
        } = self;
        let n_ranks = ranks.len();
        let settings = *rank_settings;
        let Simulation {
            sim_box,
            runtime,
            timers,
            ..
        } = sim;
        let sim_box: &SimBox = sim_box;
        let runtime: &ParallelRuntime = runtime;
        timers.time(Stage::Neighbor, || {
            let rs = DisjointSlice::new(ranks);
            runtime.par_parts(n_ranks, |ks| {
                for k in ks {
                    // SAFETY: one participant per rank.
                    let r = unsafe { rs.get_mut(k) };
                    let RankDomain {
                        atoms,
                        list,
                        serial,
                        ..
                    } = r;
                    list.rebuild_on(atoms, sim_box, settings, serial);
                }
            });
        });
    }

    /// Assemble the canonical neighbor list from the rank lists. Each rank
    /// maps its rows to canonical indices, re-filters every candidate with
    /// the exact single-domain predicate, sorts ascending and deduplicates
    /// periodic images; a serial pass lays out the canonical CRS prefix in
    /// global atom order; the ranks then copy their rows into place. The
    /// result is bit-identical to what `NeighborList::rebuild_on` would
    /// have produced on the canonical arrays.
    fn assemble_canonical_list<P: Potential>(&mut self, sim: &mut Simulation<P>) {
        let Shard {
            ranks,
            owned,
            owner_of,
            canon_settings,
            ..
        } = self;
        let n_ranks = ranks.len();
        let settings = *canon_settings;
        let cut = settings.build_cutoff();
        let cut_sq = cut * cut;
        let Simulation {
            atoms,
            sim_box,
            neighbors,
            runtime,
            timers,
            ..
        } = sim;
        let n = atoms.n_local;
        let x = &atoms.x;
        let sim_box: &SimBox = sim_box;
        let runtime: &ParallelRuntime = runtime;
        timers.time(Stage::Neighbor, || {
            // Phase 1: rank rows → filtered, ascending, deduplicated
            // canonical rows (rank-parallel; values depend only on the rank
            // list and canonical positions).
            {
                let owned: &[Vec<usize>] = owned;
                let rs = DisjointSlice::new(ranks);
                runtime.par_parts(n_ranks, |ks| {
                    for k in ks {
                        // SAFETY: one participant per rank.
                        let r = unsafe { rs.get_mut(k) };
                        let RankDomain {
                            atoms: ratoms,
                            ghost_src,
                            list,
                            row_gids,
                            row_counts,
                            ..
                        } = r;
                        let n_loc = ratoms.n_local;
                        row_gids.clear();
                        row_counts.clear();
                        for (slot, &gid_i) in owned[k].iter().enumerate() {
                            let start = row_gids.len();
                            for &j in list.neighbors_of(slot) {
                                let gid_j = if j < n_loc {
                                    owned[k][j]
                                } else {
                                    ghost_src[j - n_loc]
                                };
                                // A periodic self-image maps back to the atom
                                // itself; the canonical list never contains i
                                // in its own row.
                                if gid_j == gid_i {
                                    continue;
                                }
                                // The single-domain predicate, verbatim.
                                if sim_box.distance_sq(x[gid_i], x[gid_j]) <= cut_sq {
                                    row_gids.push(gid_j);
                                }
                            }
                            row_gids[start..].sort_unstable();
                            // In-place dedup of the freshly sorted row: two
                            // ghost images of one atom can both pass the
                            // filter but form a single canonical entry.
                            let mut w = start;
                            for rd in start..row_gids.len() {
                                if w == start || row_gids[rd] != row_gids[w - 1] {
                                    row_gids[w] = row_gids[rd];
                                    w += 1;
                                }
                            }
                            row_gids.truncate(w);
                            row_counts.push(w - start);
                        }
                    }
                });
            }

            // Phase 2 (serial): canonical CRS prefix in global atom order.
            neighbors.firstneigh.clear();
            neighbors.firstneigh.reserve(n + 1);
            neighbors.firstneigh.push(0);
            let mut total = 0usize;
            for gid in 0..n {
                let (rk, slot) = owner_of[gid];
                total += ranks[rk as usize].row_counts[slot as usize];
                neighbors.firstneigh.push(total);
            }
            neighbors.neighbors.clear();
            neighbors.neighbors.resize(total, 0);

            // Phase 3: ranks copy their rows into the canonical CRS
            // (disjoint row spans).
            {
                let firstneigh = &neighbors.firstneigh;
                let ranks: &[RankDomain] = ranks;
                let owned: &[Vec<usize>] = owned;
                let out = DisjointSlice::new(&mut neighbors.neighbors);
                runtime.par_parts(n_ranks, |ks| {
                    for k in ks {
                        let mut off = 0usize;
                        for (slot, &gid) in owned[k].iter().enumerate() {
                            let cnt = ranks[k].row_counts[slot];
                            // SAFETY: each canonical row span belongs to the
                            // one rank that owns the atom.
                            let row =
                                unsafe { out.slice_mut(firstneigh[gid]..firstneigh[gid] + cnt) };
                            row.copy_from_slice(&ranks[k].row_gids[off..off + cnt]);
                            off += cnt;
                        }
                    }
                });
            }

            // Phase 4: the same bookkeeping rebuild_on performs.
            neighbors.reference_x.clear();
            neighbors.reference_x.extend_from_slice(&x[..n]);
            neighbors.settings = settings;
            neighbors.n_local = n;
        });
    }
}

/// A decomposed simulation: N rank domains over one canonical
/// [`Simulation`], advancing a full distributed timestep per step. See the
/// module docs for the rank lifecycle and the bitwise contract.
pub struct DomainSimulation<P: Potential> {
    sim: Simulation<P>,
    shard: Shard,
}

impl<P: Potential> DomainSimulation<P> {
    /// Build a decomposed simulation from a [`SimulationBuilder`] and a
    /// rank grid. The grid is validated against the box and the
    /// potential's cutoff (every subdomain cell must be at least
    /// `cutoff + skin` wide; see [`GridError`]); the underlying simulation
    /// is constructed exactly as the builder would alone, so the initial
    /// state — velocities, forces, thermo — is identical to the
    /// single-domain run.
    pub fn new(
        builder: SimulationBuilder<P>,
        grid_dims: [usize; 3],
    ) -> Result<Self, DomainBuildError> {
        let grid = DomainGrid::new(grid_dims)?;
        let mut sim = builder.build()?;
        let canon_settings = NeighborSettings::new(sim.potential.cutoff(), sim.skin());
        grid.validate_cells(&sim.sim_box, canon_settings.build_cutoff())?;
        let rank_settings =
            NeighborSettings::new(canon_settings.cutoff, canon_settings.skin + HALO_PAD);
        let halo_dist = rank_settings.build_cutoff() + HALO_PAD;

        let n_ranks = grid.n_ranks();
        let n = sim.atoms.n_local;
        let domains: Vec<SimBox> = (0..n_ranks)
            .map(|r| grid.subdomain(&sim.sim_box, r))
            .collect();
        let mut shard = Shard {
            grid,
            domains,
            owned: vec![Vec::new(); n_ranks],
            stay: vec![Vec::new(); n_ranks],
            migrate_out: vec![Vec::new(); n_ranks * n_ranks],
            owner_of: vec![(0, 0); n],
            ranks: (0..n_ranks).map(|_| RankDomain::new()).collect(),
            halo: HaloExchange::new(n_ranks),
            canon_settings,
            rank_settings,
            halo_dist,
            migrations: 0,
        };

        // Initial partition by subdomain membership (construction is the
        // one serial pass; every later repartition is the rank-parallel
        // migration).
        for gid in 0..n {
            let r = shard.grid.locate(&sim.sim_box, sim.atoms.x[gid]);
            shard.owner_of[gid] = (r as u32, shard.owned[r].len() as u32);
            shard.owned[r].push(gid);
        }

        // Prime the rank layer: plans, ghosts, per-rank lists. The
        // canonical neighbor list from the builder stays authoritative (on
        // a resumed run it is rebuilt from checkpoint reference positions,
        // which the rank lists deliberately do not disturb); the first
        // re-neighboring replaces everything through the full exchange +
        // assembly path.
        shard.exchange_ghosts(&mut sim);
        shard.rebuild_rank_lists(&mut sim);

        Ok(DomainSimulation { sim, shard })
    }

    /// The decomposition grid.
    pub fn grid(&self) -> DomainGrid {
        self.shard.grid
    }

    /// Number of rank domains.
    pub fn n_ranks(&self) -> usize {
        self.shard.ranks.len()
    }

    /// The canonical simulation (atoms, box, thermo history, observers).
    pub fn sim(&self) -> &Simulation<P> {
        &self.sim
    }

    /// Mutable access to the canonical simulation (e.g. to re-seed
    /// velocities or register observers). The rank layer re-derives its
    /// state from the canonical arrays at every re-neighboring, so
    /// canonical mutations stay coherent.
    pub fn sim_mut(&mut self) -> &mut Simulation<P> {
        &mut self.sim
    }

    /// Advance `n_steps` decomposed timesteps (panicking counterpart of
    /// [`DomainSimulation::try_run`], mirroring [`Simulation::run`]).
    pub fn run(&mut self, n_steps: u64) -> RunReport {
        match self.try_run(n_steps) {
            Ok(report) => report,
            Err(RunError::Diverged { report, .. }) => *report,
            Err(err) => panic!("{err}"),
        }
    }

    /// Advance `n_steps` decomposed timesteps through the shared run loop:
    /// same observers, fault handling, report assembly — and bit-identical
    /// results — as the single-domain [`Simulation::try_run`].
    pub fn try_run(&mut self, n_steps: u64) -> Result<RunReport, RunError> {
        let DomainSimulation { sim, shard } = self;
        sim.run_driver(n_steps, |s| shard.step(s))
    }

    /// Total number of atoms that changed owner rank so far.
    pub fn migrations(&self) -> u64 {
        self.shard.migrations
    }

    /// Owned-atom count per rank (row-major rank order).
    pub fn atoms_per_rank(&self) -> Vec<usize> {
        self.shard.owned.iter().map(|o| o.len()).collect()
    }

    /// Imported ghosts as a fraction of local atoms — the communication
    /// surface the paper's Fig. 9 discussion attributes the strong-scaling
    /// overhead to.
    pub fn ghost_fraction(&self) -> f64 {
        let ghosts: usize = self.shard.ranks.iter().map(|r| r.atoms.n_ghost()).sum();
        ghosts as f64 / self.sim.atoms.n_local.max(1) as f64
    }

    /// Copy the current forces into `out`, ordered by canonical atom index
    /// (deterministic, allocation-free once `out` has capacity).
    pub fn collect_forces_into(&self, out: &mut Vec<[f64; 3]>) {
        out.clear();
        out.extend_from_slice(&self.sim.atoms.f[..self.sim.atoms.n_local]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::Lattice;
    use crate::pair_lj::LennardJones;
    use crate::simulation::SimulationBuilder;
    use crate::units;

    fn lj_builder(threads: usize) -> SimulationBuilder<LennardJones> {
        let (sim_box, atoms) = Lattice::silicon([3, 3, 3]).build_perturbed(0.02, 3);
        let lj = LennardJones::new(0.1, 2.0, 4.0);
        Simulation::builder(atoms, sim_box, lj)
            .masses(vec![units::mass::SI])
            .temperature(4000.0, 11)
            .thermo_every(5)
            .threads(threads)
    }

    fn bits(x: &[[f64; 3]]) -> Vec<[u64; 3]> {
        x.iter()
            .map(|p| [p[0].to_bits(), p[1].to_bits(), p[2].to_bits()])
            .collect()
    }

    #[test]
    fn decomposed_run_is_bitwise_identical_to_single_domain() {
        let mut single = lj_builder(2).build().unwrap();
        let r1 = single.run(60);

        let mut dom = DomainSimulation::new(lj_builder(2), [2, 1, 1]).unwrap();
        let r2 = dom.run(60);

        // The hot system must actually re-neighbor, otherwise this test
        // would not exercise migration/exchange/assembly.
        assert!(r1.total_rebuilds > 1, "test system failed to re-neighbor");
        assert_eq!(r1.total_rebuilds, r2.total_rebuilds);
        assert_eq!(
            r1.final_thermo.total.to_bits(),
            r2.final_thermo.total.to_bits()
        );
        assert_eq!(bits(&single.atoms.x), bits(&dom.sim().atoms.x));
        assert_eq!(bits(&single.atoms.v), bits(&dom.sim().atoms.v));
        let h1: Vec<u64> = single
            .thermo_history()
            .iter()
            .map(|t| t.total.to_bits())
            .collect();
        let h2: Vec<u64> = dom
            .sim()
            .thermo_history()
            .iter()
            .map(|t| t.total.to_bits())
            .collect();
        assert_eq!(h1, h2);
    }

    #[test]
    fn migration_conserves_atoms_and_counts_transfers() {
        let mut dom = DomainSimulation::new(lj_builder(4), [2, 2, 1]).unwrap();
        let before: usize = dom.atoms_per_rank().iter().sum();
        dom.run(80);
        let after: usize = dom.atoms_per_rank().iter().sum();
        assert_eq!(before, dom.sim().atoms.n_local);
        assert_eq!(after, dom.sim().atoms.n_local);
        assert!(
            dom.migrations() > 0,
            "hot system should move atoms across rank boundaries"
        );
        // Ownership must agree with the grid for every atom after the run's
        // last migration... only guaranteed right after a rebuild, so check
        // the weaker invariant: every atom is owned exactly once.
        let mut seen = vec![false; dom.sim().atoms.n_local];
        for r in 0..dom.n_ranks() {
            for &gid in &dom.shard.owned[r] {
                assert!(!seen[gid], "atom {gid} owned twice");
                seen[gid] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn ghost_machinery_is_live_and_comm_time_is_recorded() {
        let mut dom = DomainSimulation::new(lj_builder(1), [2, 2, 2]).unwrap();
        assert!(dom.ghost_fraction() > 0.0);
        assert_eq!(dom.atoms_per_rank().len(), 8);
        dom.run(40);
        assert!(dom.sim().timers.seconds(Stage::Comm) > 0.0);
        let mut forces = Vec::new();
        dom.collect_forces_into(&mut forces);
        assert_eq!(forces.len(), dom.sim().atoms.n_local);
        assert_eq!(bits(&forces), bits(&dom.sim().atoms.f));
    }

    #[test]
    fn invalid_grids_are_rejected_with_typed_errors() {
        // 16.29 Å / 4 ranks ≈ 4.07 Å < cutoff+skin = 5.0 Å.
        let Err(err) = DomainSimulation::new(lj_builder(1), [4, 1, 1]) else {
            panic!("thin cells should be rejected");
        };
        assert!(
            matches!(
                err,
                DomainBuildError::Grid(GridError::CellSmallerThanCutoff { dim: 0, .. })
            ),
            "got {err:?}"
        );
        let Err(err) = DomainSimulation::new(lj_builder(1), [1, 0, 1]) else {
            panic!("zero grid dimension should be rejected");
        };
        assert!(matches!(
            err,
            DomainBuildError::Grid(GridError::ZeroDimension { dim: 1 })
        ));
        // Builder errors pass through typed.
        let Err(err) = DomainSimulation::new(lj_builder(1).timestep(-1.0), [1, 1, 1]) else {
            panic!("builder errors should pass through");
        };
        assert!(matches!(
            err,
            DomainBuildError::Simulation(BuildError::NonPositiveTimestep(_))
        ));
    }
}
