//! Rank-parallel spatial domain decomposition — the distributed timestep.
//!
//! The paper's strong-scaling results (Fig. 9) come from running the
//! vectorized Tersoff kernels inside LAMMPS's spatial decomposition: the
//! box is tiled into per-rank subdomains, each rank owns the atoms inside
//! its brick, integrates and neighbor-builds them locally, imports *ghost*
//! copies of boundary atoms from neighboring ranks every step, and hands
//! atoms over when they cross a boundary. This module is that machinery,
//! in-process: N ranks sharing one [`crate::runtime::ParallelRuntime`],
//! with ghost traffic phrased as explicit serializable messages so the
//! same timestep can later run over sockets.
//!
//! - [`grid`] — the rank lattice: indexing, subdomains, owner lookup, and
//!   typed validation ([`GridError`]) of grids whose cells are thinner
//!   than the neighbor build cutoff.
//! - [`halo`] — ghost exchange as [`HaloMsg`] send/recv pairs: plan
//!   messages at re-neighboring, position-refresh messages every step,
//!   both with a bit-exact little-endian wire encoding.
//! - [`sim`] — [`DomainSimulation`]: the full decomposed timestep
//!   (integrate → halo refresh → migrate/exchange/rebuild → forces →
//!   integrate), **bitwise identical** to the single-domain
//!   [`crate::simulation::Simulation`] for any grid at any thread count.
//!
//! See the [`sim`] module docs for the rank lifecycle and the proof
//! obligations behind the bitwise contract.

pub mod grid;
pub mod halo;
pub mod sim;

pub use grid::{DomainGrid, GridError};
pub use halo::{GhostRef, HaloDecodeError, HaloMsg, HaloPayload};
pub use sim::{DomainBuildError, DomainSimulation};
