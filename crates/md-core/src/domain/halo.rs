//! Halo (ghost) exchange between ranks, phrased as explicit messages.
//!
//! Every piece of inter-rank traffic is a [`HaloMsg`]: a `(src, dst)`
//! addressed envelope whose payload is either the ghost *plan* — which of
//! `src`'s atoms (and which periodic images) fall inside `dst`'s halo
//! region — or the per-step *position refresh* for exactly those atoms, in
//! plan order. Today the transport is shared memory: ranks live in one
//! address space and the "send" is filling a mailbox slot that the
//! destination rank reads on the same timestep. The message types are
//! nevertheless fully serializable ([`HaloMsg::encode`] /
//! [`HaloMsg::decode`], a fixed little-endian layout with `f64` payloads
//! carried bit-exactly) so a socket transport can replace the mailboxes
//! without reshaping the timestep.
//!
//! The exchange itself runs rank-parallel on the shared runtime: plan
//! building and refresh packing dispatch one closure per *source* rank
//! (each source owns its row of mailboxes), and the receive side in
//! `domain::sim` dispatches per *destination* rank. Plans are rebuilt from
//! scratch at every re-neighboring, right after atom migration; between
//! rebuilds only positions flow.

use crate::runtime::{DisjointSlice, ParallelRuntime};
use crate::simbox::SimBox;
use std::fmt;

/// One ghost atom in a plan: which source atom it is, and which periodic
/// image of it the destination should see.
#[derive(Clone, Debug, PartialEq)]
pub struct GhostRef {
    /// Row of the source atom in the canonical (global) atom arrays. A
    /// future wire transport would map this through `id` instead; in the
    /// shared-memory transport it doubles as the refresh lookup.
    pub index: usize,
    /// Stable atom id (what a remote peer would key on).
    pub id: u64,
    /// Atom type index.
    pub type_: usize,
    /// Periodic image shift to add to the source position (0 or ±L per
    /// dimension).
    pub shift: [f64; 3],
    /// The shifted position at plan time.
    pub x: [f64; 3],
}

/// Payload of a halo message.
#[derive(Clone, Debug, PartialEq)]
pub enum HaloPayload {
    /// A ghost plan: sent at re-neighboring, establishes which images `dst`
    /// imports from `src` and in what order.
    Ghosts(Vec<GhostRef>),
    /// A position refresh: sent every step, one position per planned ghost,
    /// in plan order.
    Positions(Vec<[f64; 3]>),
}

impl HaloPayload {
    /// The ghost plan entries (empty for a positions payload).
    pub fn ghosts(&self) -> &[GhostRef] {
        match self {
            HaloPayload::Ghosts(v) => v,
            HaloPayload::Positions(_) => &[],
        }
    }

    /// The refreshed positions (empty for a ghosts payload).
    pub fn positions(&self) -> &[[f64; 3]] {
        match self {
            HaloPayload::Positions(v) => v,
            HaloPayload::Ghosts(_) => &[],
        }
    }
}

/// A message between two ranks of a decomposed run.
#[derive(Clone, Debug, PartialEq)]
pub struct HaloMsg {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// What is being sent.
    pub payload: HaloPayload,
}

/// Why a [`HaloMsg`] byte stream failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HaloDecodeError {
    /// The buffer ended before the declared payload was complete.
    Truncated,
    /// Unknown payload tag byte.
    BadTag(u8),
    /// Bytes remained after a complete message.
    TrailingBytes(usize),
}

impl fmt::Display for HaloDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HaloDecodeError::Truncated => write!(f, "halo message truncated"),
            HaloDecodeError::BadTag(t) => write!(f, "unknown halo payload tag {t}"),
            HaloDecodeError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after halo message")
            }
        }
    }
}

impl std::error::Error for HaloDecodeError {}

const TAG_GHOSTS: u8 = 0;
const TAG_POSITIONS: u8 = 1;

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], HaloDecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(HaloDecodeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, HaloDecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, HaloDecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, HaloDecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn vec3(&mut self) -> Result<[f64; 3], HaloDecodeError> {
        Ok([self.f64()?, self.f64()?, self.f64()?])
    }
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_vec3(out: &mut Vec<u8>, v: [f64; 3]) {
    for c in v {
        put_u64(out, c.to_bits());
    }
}

impl HaloMsg {
    /// An empty message of the given payload kind (mailbox initialisation).
    pub(crate) fn empty_ghosts(src: usize, dst: usize) -> Self {
        HaloMsg {
            src,
            dst,
            payload: HaloPayload::Ghosts(Vec::new()),
        }
    }

    /// See [`HaloMsg::empty_ghosts`].
    pub(crate) fn empty_positions(src: usize, dst: usize) -> Self {
        HaloMsg {
            src,
            dst,
            payload: HaloPayload::Positions(Vec::new()),
        }
    }

    fn ghosts_mut(&mut self) -> &mut Vec<GhostRef> {
        match &mut self.payload {
            HaloPayload::Ghosts(v) => v,
            HaloPayload::Positions(_) => unreachable!("ghost mailbox holds a Ghosts payload"),
        }
    }

    fn positions_mut(&mut self) -> &mut Vec<[f64; 3]> {
        match &mut self.payload {
            HaloPayload::Positions(v) => v,
            HaloPayload::Ghosts(_) => unreachable!("refresh mailbox holds a Positions payload"),
        }
    }

    /// Append the wire encoding of this message to `out`. The layout is
    /// fixed little-endian — tag byte, `src`, `dst`, entry count, entries —
    /// with every `f64` carried as its IEEE-754 bit pattern, so a decoded
    /// message is *bitwise* identical to the original.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match &self.payload {
            HaloPayload::Ghosts(ghosts) => {
                out.push(TAG_GHOSTS);
                put_u64(out, self.src as u64);
                put_u64(out, self.dst as u64);
                put_u64(out, ghosts.len() as u64);
                for g in ghosts {
                    put_u64(out, g.index as u64);
                    put_u64(out, g.id);
                    put_u64(out, g.type_ as u64);
                    put_vec3(out, g.shift);
                    put_vec3(out, g.x);
                }
            }
            HaloPayload::Positions(xs) => {
                out.push(TAG_POSITIONS);
                put_u64(out, self.src as u64);
                put_u64(out, self.dst as u64);
                put_u64(out, xs.len() as u64);
                for &x in xs {
                    put_vec3(out, x);
                }
            }
        }
    }

    /// Decode a message produced by [`HaloMsg::encode`]. The whole buffer
    /// must be exactly one message.
    pub fn decode(buf: &[u8]) -> Result<HaloMsg, HaloDecodeError> {
        let mut c = Cursor { buf, pos: 0 };
        let tag = c.u8()?;
        let src = c.u64()? as usize;
        let dst = c.u64()? as usize;
        let count = c.u64()? as usize;
        let payload = match tag {
            TAG_GHOSTS => {
                let mut ghosts = Vec::with_capacity(count.min(buf.len() / 8));
                for _ in 0..count {
                    ghosts.push(GhostRef {
                        index: c.u64()? as usize,
                        id: c.u64()?,
                        type_: c.u64()? as usize,
                        shift: c.vec3()?,
                        x: c.vec3()?,
                    });
                }
                HaloPayload::Ghosts(ghosts)
            }
            TAG_POSITIONS => {
                let mut xs = Vec::with_capacity(count.min(buf.len() / 24));
                for _ in 0..count {
                    xs.push(c.vec3()?);
                }
                HaloPayload::Positions(xs)
            }
            t => return Err(HaloDecodeError::BadTag(t)),
        };
        if c.pos != buf.len() {
            return Err(HaloDecodeError::TrailingBytes(buf.len() - c.pos));
        }
        Ok(HaloMsg { src, dst, payload })
    }
}

/// The full mailbox grid of a decomposed run: one plan message and one
/// refresh message per ordered `(src, dst)` rank pair, buffers reused
/// across steps so the steady-state exchange allocates nothing.
pub(crate) struct HaloExchange {
    n_ranks: usize,
    /// Ghost plans, indexed `src * n_ranks + dst`.
    plans: Vec<HaloMsg>,
    /// Position refreshes, same indexing.
    refresh: Vec<HaloMsg>,
    /// Whether plans have been built since construction.
    planned: bool,
}

/// Periodic image shifts along one dimension: `{-L, 0, +L}` if periodic,
/// `{0}` otherwise.
fn shifts_for(sim_box: &SimBox, d: usize) -> ([f64; 3], usize) {
    if sim_box.periodic[d] {
        let l = sim_box.hi[d] - sim_box.lo[d];
        ([-l, 0.0, l], 3)
    } else {
        ([0.0; 3], 1)
    }
}

impl HaloExchange {
    pub(crate) fn new(n_ranks: usize) -> Self {
        let mut plans = Vec::with_capacity(n_ranks * n_ranks);
        let mut refresh = Vec::with_capacity(n_ranks * n_ranks);
        for src in 0..n_ranks {
            for dst in 0..n_ranks {
                plans.push(HaloMsg::empty_ghosts(src, dst));
                refresh.push(HaloMsg::empty_positions(src, dst));
            }
        }
        HaloExchange {
            n_ranks,
            plans,
            refresh,
            planned: false,
        }
    }

    pub(crate) fn planned(&self) -> bool {
        self.planned
    }

    /// The current ghost plan from `src` to `dst`.
    pub(crate) fn plan(&self, src: usize, dst: usize) -> &[GhostRef] {
        self.plans[src * self.n_ranks + dst].payload.ghosts()
    }

    /// The latest position refresh from `src` to `dst`.
    pub(crate) fn refreshed(&self, src: usize, dst: usize) -> &[[f64; 3]] {
        self.refresh[src * self.n_ranks + dst].payload.positions()
    }

    /// Rebuild every ghost plan from the current canonical positions. The
    /// send side of re-neighboring: each source rank scans its owned atoms
    /// against every destination's halo bounds (`[lo - halo, hi + halo]`
    /// per dimension, with periodic images of the global box) and fills its
    /// row of plan mailboxes. Ranks run concurrently; each source owns a
    /// disjoint mailbox row, and each mailbox's content depends only on the
    /// canonical state, so the result is independent of thread count.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn build_plans(
        &mut self,
        runtime: &ParallelRuntime,
        global: &SimBox,
        halo: f64,
        x: &[[f64; 3]],
        type_: &[usize],
        id: &[u64],
        owned: &[Vec<usize>],
        domains: &[SimBox],
    ) {
        let n = self.n_ranks;
        let (sx, nx) = shifts_for(global, 0);
        let (sy, ny) = shifts_for(global, 1);
        let (sz, nz) = shifts_for(global, 2);
        let mailboxes = DisjointSlice::new(&mut self.plans);
        runtime.par_parts(n, |srcs| {
            for src in srcs {
                // SAFETY: each participant handles distinct `src` values, so
                // mailbox rows are disjoint.
                let row = unsafe { mailboxes.slice_mut(src * n..(src + 1) * n) };
                for msg in row.iter_mut() {
                    msg.ghosts_mut().clear();
                }
                for &gid in &owned[src] {
                    let p = x[gid];
                    for &dx in &sx[..nx] {
                        for &dy in &sy[..ny] {
                            for &dz in &sz[..nz] {
                                let img = [p[0] + dx, p[1] + dy, p[2] + dz];
                                let zero_shift = dx == 0.0 && dy == 0.0 && dz == 0.0;
                                for (dst, dom) in domains.iter().enumerate() {
                                    if dst == src && zero_shift {
                                        continue;
                                    }
                                    let inside = (0..3).all(|d| {
                                        img[d] >= dom.lo[d] - halo && img[d] <= dom.hi[d] + halo
                                    });
                                    if inside {
                                        row[dst].ghosts_mut().push(GhostRef {
                                            index: gid,
                                            id: id[gid],
                                            type_: type_[gid],
                                            shift: [dx, dy, dz],
                                            x: img,
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        });
        self.planned = true;
    }

    /// Pack the per-step position refresh: for every planned ghost, the
    /// current canonical position plus the planned image shift, in plan
    /// order. The shift arithmetic is the same expression used at plan
    /// time, so a refresh on an unmoved atom reproduces the plan position
    /// bit for bit.
    pub(crate) fn refresh_positions(&mut self, runtime: &ParallelRuntime, x: &[[f64; 3]]) {
        let n = self.n_ranks;
        let plans = &self.plans;
        let mailboxes = DisjointSlice::new(&mut self.refresh);
        runtime.par_parts(n, |srcs| {
            for src in srcs {
                // SAFETY: disjoint mailbox rows per `src`, as in build_plans.
                let row = unsafe { mailboxes.slice_mut(src * n..(src + 1) * n) };
                for (dst, msg) in row.iter_mut().enumerate() {
                    let buf = msg.positions_mut();
                    buf.clear();
                    for g in plans[src * n + dst].payload.ghosts() {
                        let p = x[g.index];
                        buf.push([p[0] + g.shift[0], p[1] + g.shift[1], p[2] + g.shift[2]]);
                    }
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::grid::DomainGrid;

    #[test]
    fn ghost_message_round_trips_bitwise() {
        let msg = HaloMsg {
            src: 1,
            dst: 3,
            payload: HaloPayload::Ghosts(vec![
                GhostRef {
                    index: 7,
                    id: 42,
                    type_: 1,
                    shift: [-10.0, 0.0, 10.0],
                    x: [0.125, -3.5, 9.875],
                },
                GhostRef {
                    index: 0,
                    id: 1,
                    type_: 0,
                    shift: [0.0, -0.0, 0.0],
                    x: [1.0e-300, f64::MAX, -0.0],
                },
            ]),
        };
        let mut bytes = Vec::new();
        msg.encode(&mut bytes);
        let back = HaloMsg::decode(&bytes).unwrap();
        // Bitwise: re-encoding the decoded message must reproduce the bytes
        // (PartialEq alone would conflate 0.0 and -0.0).
        let mut bytes2 = Vec::new();
        back.encode(&mut bytes2);
        assert_eq!(bytes, bytes2);
        assert_eq!(back, msg);
    }

    #[test]
    fn positions_message_round_trips() {
        let msg = HaloMsg {
            src: 0,
            dst: 2,
            payload: HaloPayload::Positions(vec![[1.5, 2.5, -3.5], [0.0, -0.0, 1.0e-12]]),
        };
        let mut bytes = Vec::new();
        msg.encode(&mut bytes);
        assert_eq!(HaloMsg::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn decode_rejects_truncation_bad_tags_and_trailing_bytes() {
        let msg = HaloMsg {
            src: 0,
            dst: 1,
            payload: HaloPayload::Positions(vec![[1.0, 2.0, 3.0]]),
        };
        let mut bytes = Vec::new();
        msg.encode(&mut bytes);
        assert_eq!(
            HaloMsg::decode(&bytes[..bytes.len() - 1]),
            Err(HaloDecodeError::Truncated)
        );
        let mut bad = bytes.clone();
        bad[0] = 9;
        assert_eq!(HaloMsg::decode(&bad), Err(HaloDecodeError::BadTag(9)));
        bytes.push(0);
        assert_eq!(
            HaloMsg::decode(&bytes),
            Err(HaloDecodeError::TrailingBytes(1))
        );
    }

    #[test]
    fn plans_cover_halo_regions_and_skip_self() {
        let global = SimBox::cubic(10.0);
        let grid = DomainGrid::new([2, 1, 1]).unwrap();
        let n = grid.n_ranks();
        let domains: Vec<SimBox> = (0..n).map(|r| grid.subdomain(&global, r)).collect();
        // One atom near the lower x face, one mid-cell, one near x = 5.
        let x = vec![[0.3, 5.0, 5.0], [2.5, 5.0, 5.0], [4.9, 5.0, 5.0]];
        let type_ = vec![0, 0, 0];
        let id = vec![1, 2, 3];
        let owned = vec![vec![0, 1, 2], vec![]];
        let runtime = ParallelRuntime::serial();
        let mut halo = HaloExchange::new(n);
        halo.build_plans(&runtime, &global, 1.0, &x, &type_, &id, &owned, &domains);
        assert!(halo.planned());
        // Atom 0 reaches rank 1 through the periodic -x face (shift +L puts
        // its image at 10.3, inside [5-1, 10+1]); atom 2 reaches rank 1
        // directly. Atom 1 is interior and exports nowhere.
        let to_other = halo.plan(0, 1);
        let ids: Vec<u64> = to_other.iter().map(|g| g.id).collect();
        assert_eq!(ids, vec![1, 3]);
        assert_eq!(to_other[0].shift, [10.0, 0.0, 0.0]);
        assert_eq!(to_other[1].shift, [0.0, 0.0, 0.0]);
        // Self-plan holds only shifted images, never the atom itself.
        for g in halo.plan(0, 0) {
            assert_ne!(g.shift, [0.0, 0.0, 0.0]);
        }
        // Every planned image really lies inside the destination halo.
        for src in 0..n {
            for dst in 0..n {
                for g in halo.plan(src, dst) {
                    for d in 0..3 {
                        assert!(g.x[d] >= domains[dst].lo[d] - 1.0);
                        assert!(g.x[d] <= domains[dst].hi[d] + 1.0);
                    }
                }
            }
        }
        // Refresh on unmoved atoms reproduces plan positions bit for bit.
        halo.refresh_positions(&runtime, &x);
        for (k, g) in halo.plan(0, 1).iter().enumerate() {
            assert_eq!(halo.refreshed(0, 1)[k], g.x);
        }
    }
}
