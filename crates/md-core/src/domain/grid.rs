//! The rank grid: how the global box tiles into per-rank subdomains.
//!
//! LAMMPS assigns each MPI rank a brick-shaped subdomain of the global
//! box; atoms belong to the rank whose brick contains them. [`DomainGrid`]
//! is that assignment as pure geometry: rank indexing (row-major over the
//! grid), subdomain construction (via [`SimBox::subdomain`]) and the
//! owner lookup used by atom migration. Validation is typed: a grid whose
//! cells are thinner than the neighbor build cutoff (`cutoff + skin`)
//! cannot guarantee that a halo one cell deep covers every interaction,
//! so [`DomainGrid::validate_cells`] rejects it with a [`GridError`]
//! instead of producing silently wrong forces.

use crate::simbox::SimBox;
use std::fmt;

/// Why a decomposition grid was rejected.
#[derive(Clone, Debug, PartialEq)]
pub enum GridError {
    /// A grid dimension is zero; every dimension needs at least one rank.
    ZeroDimension {
        /// The offending dimension (0 = x, 1 = y, 2 = z).
        dim: usize,
    },
    /// A subdomain cell is thinner than the neighbor build cutoff
    /// (`cutoff + skin`), so the one-cell-deep halo exchange could miss
    /// interactions that reach across a whole cell.
    CellSmallerThanCutoff {
        /// The offending dimension (0 = x, 1 = y, 2 = z).
        dim: usize,
        /// Cell extent along that dimension (Å).
        cell: f64,
        /// The required minimum: the neighbor build cutoff `cutoff + skin`
        /// (Å).
        required: f64,
    },
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::ZeroDimension { dim } => {
                write!(
                    f,
                    "decomposition grid dimension {} must be >= 1",
                    ["x", "y", "z"][*dim]
                )
            }
            GridError::CellSmallerThanCutoff {
                dim,
                cell,
                required,
            } => write!(
                f,
                "decomposition cell along {} ({cell:.3} Å) is thinner than the \
                 neighbor build cutoff + skin ({required:.3} Å); use a \
                 coarser grid or a larger box",
                ["x", "y", "z"][*dim]
            ),
        }
    }
}

impl std::error::Error for GridError {}

/// An `nx × ny × nz` grid of ranks tiling the global box. Ranks are indexed
/// row-major: `rank = cx·ny·nz + cy·nz + cz`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DomainGrid {
    /// Ranks per dimension.
    pub dims: [usize; 3],
}

impl DomainGrid {
    /// A validated grid (every dimension ≥ 1).
    pub fn new(dims: [usize; 3]) -> Result<Self, GridError> {
        for (dim, &g) in dims.iter().enumerate() {
            if g == 0 {
                return Err(GridError::ZeroDimension { dim });
            }
        }
        Ok(DomainGrid { dims })
    }

    /// Total number of ranks.
    #[inline]
    pub fn n_ranks(&self) -> usize {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    /// Row-major rank index of a grid coordinate.
    #[inline]
    pub fn rank_of(&self, coord: [usize; 3]) -> usize {
        coord[0] * self.dims[1] * self.dims[2] + coord[1] * self.dims[2] + coord[2]
    }

    /// Grid coordinate of a rank index (inverse of [`DomainGrid::rank_of`]).
    #[inline]
    pub fn coord_of(&self, rank: usize) -> [usize; 3] {
        let plane = self.dims[1] * self.dims[2];
        [
            rank / plane,
            (rank % plane) / self.dims[2],
            rank % self.dims[2],
        ]
    }

    /// The subdomain box owned by `rank` (non-periodic view; periodicity of
    /// the parent box is carried by the ghost exchange).
    pub fn subdomain(&self, global: &SimBox, rank: usize) -> SimBox {
        global.subdomain(self.dims, self.coord_of(rank))
    }

    /// The rank whose subdomain contains position `x`. The position is
    /// wrapped into the global box first, so any integrator output is a
    /// valid query.
    pub fn locate(&self, global: &SimBox, x: [f64; 3]) -> usize {
        let p = global.wrap(x);
        let lengths = global.lengths();
        let mut coord = [0usize; 3];
        for d in 0..3 {
            let rel = (p[d] - global.lo[d]) / lengths[d];
            coord[d] = ((rel * self.dims[d] as f64).floor() as usize).min(self.dims[d] - 1);
        }
        self.rank_of(coord)
    }

    /// Check that every subdomain cell is at least `build_cutoff`
    /// (= `cutoff + skin`) wide in every dimension — the condition under
    /// which a one-cell halo covers all interactions of a rank's atoms.
    pub fn validate_cells(&self, global: &SimBox, build_cutoff: f64) -> Result<(), GridError> {
        let lengths = global.lengths();
        for dim in 0..3 {
            let cell = lengths[dim] / self.dims[dim] as f64;
            if cell < build_cutoff {
                return Err(GridError::CellSmallerThanCutoff {
                    dim,
                    cell,
                    required: build_cutoff,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_indexing_round_trips() {
        let grid = DomainGrid::new([2, 3, 4]).unwrap();
        assert_eq!(grid.n_ranks(), 24);
        for rank in 0..grid.n_ranks() {
            assert_eq!(grid.rank_of(grid.coord_of(rank)), rank);
        }
        assert_eq!(grid.rank_of([0, 0, 0]), 0);
        assert_eq!(grid.rank_of([1, 2, 3]), 23);
    }

    #[test]
    fn zero_dimension_is_rejected() {
        assert_eq!(
            DomainGrid::new([2, 0, 1]),
            Err(GridError::ZeroDimension { dim: 1 })
        );
    }

    #[test]
    fn locate_agrees_with_subdomain_membership() {
        let global = SimBox::cubic(12.0);
        let grid = DomainGrid::new([2, 2, 3]).unwrap();
        for &x in &[
            [0.1, 0.1, 0.1],
            [11.9, 11.9, 11.9],
            [6.0, 5.9, 4.0],
            [-1.0, 25.0, 6.0], // out of the box: wrapped first
        ] {
            let rank = grid.locate(&global, x);
            let sub = grid.subdomain(&global, rank);
            assert!(sub.contains(global.wrap(x)), "x={x:?} rank={rank}");
        }
    }

    #[test]
    fn subdomains_tile_the_box() {
        let global = SimBox::cubic(10.0);
        let grid = DomainGrid::new([2, 1, 2]).unwrap();
        let total: f64 = (0..grid.n_ranks())
            .map(|r| grid.subdomain(&global, r).volume())
            .sum();
        assert!((total - global.volume()).abs() < 1e-9);
    }

    #[test]
    fn thin_cells_are_rejected_with_the_dimension() {
        let global = SimBox::orthogonal([0.0; 3], [16.0, 16.0, 8.0]);
        let grid = DomainGrid::new([2, 2, 2]).unwrap();
        // 8/2 = 4.0 < 4.2 along z only.
        let err = grid.validate_cells(&global, 4.2).unwrap_err();
        assert_eq!(
            err,
            GridError::CellSmallerThanCutoff {
                dim: 2,
                cell: 4.0,
                required: 4.2
            }
        );
        assert!(err.to_string().contains('z'));
        assert!(grid.validate_cells(&global, 4.0).is_ok());
    }
}
