//! Lennard-Jones pair potential.
//!
//! The paper motivates its work by contrasting multi-body potentials with
//! the "well-studied pair potentials" whose vectorization is a solved
//! problem. This LJ implementation serves that role here: it is the baseline
//! workload for the `lj_baseline` bench (pair vs multi-body cost profile) and
//! a second, independent implementation of the [`Potential`] trait exercised
//! by the substrate tests.

use crate::atom::AtomData;
use crate::force_engine::RangePotential;
use crate::neighbor::NeighborList;
use crate::potential::{ComputeOutput, Potential};
use crate::simbox::SimBox;
use std::any::Any;
use std::ops::Range;

/// Lennard-Jones 12-6 potential with a radial cutoff, energy-shifted so the
/// potential is continuous at the cutoff.
#[derive(Clone, Debug)]
pub struct LennardJones {
    /// Well depth ε (eV) per pair of types, row-major `[ntypes × ntypes]`.
    epsilon: Vec<f64>,
    /// Zero-crossing distance σ (Å) per pair of types.
    sigma: Vec<f64>,
    /// Cutoff distance (Å), shared by all type pairs.
    cutoff: f64,
    /// Number of atom types.
    ntypes: usize,
    /// Energy shift at the cutoff per type pair.
    shift: Vec<f64>,
}

impl LennardJones {
    /// Single-species LJ.
    pub fn new(epsilon: f64, sigma: f64, cutoff: f64) -> Self {
        Self::multi(vec![epsilon], vec![sigma], 1, cutoff)
    }

    /// Multi-species LJ with explicit per-pair ε and σ tables
    /// (`ntypes × ntypes`, row-major).
    pub fn multi(epsilon: Vec<f64>, sigma: Vec<f64>, ntypes: usize, cutoff: f64) -> Self {
        assert_eq!(epsilon.len(), ntypes * ntypes);
        assert_eq!(sigma.len(), ntypes * ntypes);
        assert!(cutoff > 0.0);
        let mut shift = vec![0.0; ntypes * ntypes];
        for idx in 0..ntypes * ntypes {
            let sr6 = (sigma[idx] / cutoff).powi(6);
            shift[idx] = 4.0 * epsilon[idx] * (sr6 * sr6 - sr6);
        }
        LennardJones {
            epsilon,
            sigma,
            cutoff,
            ntypes,
            shift,
        }
    }

    /// Standard Lorentz-Berthelot mixing from per-species ε and σ.
    pub fn from_species(eps: &[f64], sig: &[f64], cutoff: f64) -> Self {
        let n = eps.len();
        assert_eq!(sig.len(), n);
        let mut epsilon = vec![0.0; n * n];
        let mut sigma = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                epsilon[i * n + j] = (eps[i] * eps[j]).sqrt();
                sigma[i * n + j] = 0.5 * (sig[i] + sig[j]);
            }
        }
        Self::multi(epsilon, sigma, n, cutoff)
    }

    #[inline]
    fn pair_index(&self, ti: usize, tj: usize) -> usize {
        ti * self.ntypes + tj
    }

    /// Pair energy and force magnitude over r (`-dU/dr / r`) at squared
    /// distance `r2` for a type pair.
    #[inline]
    fn pair_eval(&self, idx: usize, r2: f64) -> (f64, f64) {
        let sigma2 = self.sigma[idx] * self.sigma[idx];
        let sr2 = sigma2 / r2;
        let sr6 = sr2 * sr2 * sr2;
        let sr12 = sr6 * sr6;
        let eps = self.epsilon[idx];
        let energy = 4.0 * eps * (sr12 - sr6) - self.shift[idx];
        // F(r)/r = 24 ε (2 σ¹²/r¹² − σ⁶/r⁶) / r².
        let fpair = 24.0 * eps * (2.0 * sr12 - sr6) / r2;
        (energy, fpair)
    }

    /// Accumulate the contributions of local atoms in `range` into `out`.
    /// Only `out.forces[i]` for `i` in the range is written, so disjoint
    /// ranges can run concurrently even into a shared output.
    fn accumulate_range(
        &self,
        atoms: &AtomData,
        sim_box: &SimBox,
        neighbors: &NeighborList,
        range: Range<usize>,
        out: &mut ComputeOutput,
    ) {
        let cut_sq = self.cutoff * self.cutoff;
        for i in range {
            let xi = atoms.x[i];
            let ti = atoms.type_[i];
            for &j in neighbors.neighbors_of(i) {
                let del = sim_box.min_image(xi, atoms.x[j]);
                let r2 = del[0] * del[0] + del[1] * del[1] + del[2] * del[2];
                if r2 >= cut_sq || r2 == 0.0 {
                    continue;
                }
                let idx = self.pair_index(ti, atoms.type_[j]);
                let (energy, fpair) = self.pair_eval(idx, r2);
                // Each ordered pair contributes half the pair energy and the
                // full force on i (the j side is added when the pair is seen
                // from j, or folded back from the ghost copy).
                out.energy += 0.5 * energy;
                out.virial += 0.5 * fpair * r2;
                for (c, (a, b)) in crate::potential::VOIGT.iter().enumerate() {
                    out.virial_tensor[c] += 0.5 * fpair * del[*a] * del[*b];
                }
                for d in 0..3 {
                    // del = xj - xi, force on i is -fpair * del.
                    out.forces[i][d] -= fpair * del[d];
                }
            }
        }
    }
}

impl Potential for LennardJones {
    fn name(&self) -> String {
        "lj/cut".to_string()
    }

    fn cutoff(&self) -> f64 {
        self.cutoff
    }

    fn compute(
        &mut self,
        atoms: &AtomData,
        sim_box: &SimBox,
        neighbors: &NeighborList,
        out: &mut ComputeOutput,
    ) {
        out.reset(atoms.n_total());
        self.accumulate_range(atoms, sim_box, neighbors, 0..atoms.n_local, out);
    }
}

impl RangePotential for LennardJones {
    fn prepare(&mut self, _atoms: &AtomData, _sim_box: &SimBox, _neighbors: &NeighborList) {}

    fn make_scratch(&self) -> Box<dyn Any + Send> {
        Box::new(())
    }

    fn compute_range(
        &self,
        atoms: &AtomData,
        sim_box: &SimBox,
        neighbors: &NeighborList,
        range: Range<usize>,
        _scratch: &mut (dyn Any + Send),
        out: &mut ComputeOutput,
    ) {
        self.accumulate_range(atoms, sim_box, neighbors, range, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neighbor::NeighborSettings;

    fn dimer(r: f64) -> (SimBox, AtomData) {
        let b = SimBox::cubic(100.0);
        let mut atoms = AtomData::new();
        atoms.push_local([10.0, 10.0, 10.0], [0.0; 3], 0, 1);
        atoms.push_local([10.0 + r, 10.0, 10.0], [0.0; 3], 0, 2);
        (b, atoms)
    }

    fn compute(lj: &mut LennardJones, b: &SimBox, atoms: &AtomData) -> ComputeOutput {
        let list = NeighborList::build_naive(atoms, b, NeighborSettings::new(lj.cutoff(), 0.5));
        let mut out = ComputeOutput::zeros(atoms.n_total());
        lj.compute(atoms, b, &list, &mut out);
        out
    }

    #[test]
    fn minimum_is_at_two_to_the_sixth_sigma() {
        let sigma = 1.0;
        let r_min = 2.0f64.powf(1.0 / 6.0) * sigma;
        let mut lj = LennardJones::new(0.5, sigma, 10.0);
        let (b, atoms) = dimer(r_min);
        let out = compute(&mut lj, &b, &atoms);
        // At the minimum the force vanishes and the energy is −ε (up to the
        // small cutoff shift).
        assert!(out.max_force_component() < 1e-9);
        assert!((out.energy - (-0.5)).abs() < 1e-3);
    }

    #[test]
    fn repulsive_inside_minimum_attractive_outside() {
        let mut lj = LennardJones::new(1.0, 1.0, 10.0);
        let (b, atoms) = dimer(0.9);
        let out = compute(&mut lj, &b, &atoms);
        // Force on atom 0 should push it away from atom 1 (negative x).
        assert!(out.forces[0][0] < 0.0);

        let (b, atoms) = dimer(1.5);
        let out = compute(&mut lj, &b, &atoms);
        assert!(out.forces[0][0] > 0.0);
    }

    #[test]
    fn forces_are_antisymmetric() {
        let mut lj = LennardJones::new(1.0, 1.0, 10.0);
        let (b, atoms) = dimer(1.2);
        let out = compute(&mut lj, &b, &atoms);
        for d in 0..3 {
            assert!((out.forces[0][d] + out.forces[1][d]).abs() < 1e-12);
        }
    }

    #[test]
    fn energy_matches_formula() {
        let eps = 0.7;
        let sigma = 1.1;
        let r: f64 = 1.4;
        let mut lj = LennardJones::new(eps, sigma, 8.0);
        let (b, atoms) = dimer(r);
        let out = compute(&mut lj, &b, &atoms);
        let sr6 = (sigma / r).powi(6);
        let shift = 4.0 * eps * ((sigma / 8.0f64).powi(12) - (sigma / 8.0f64).powi(6));
        let expected = 4.0 * eps * (sr6 * sr6 - sr6) - shift;
        assert!((out.energy - expected).abs() < 1e-12);
    }

    #[test]
    fn beyond_cutoff_contributes_nothing() {
        let mut lj = LennardJones::new(1.0, 1.0, 3.0);
        let (b, atoms) = dimer(3.5);
        let out = compute(&mut lj, &b, &atoms);
        assert_eq!(out.energy, 0.0);
        assert_eq!(out.max_force_component(), 0.0);
    }

    #[test]
    fn mixing_rules() {
        let lj = LennardJones::from_species(&[1.0, 4.0], &[1.0, 3.0], 10.0);
        // ε12 = sqrt(1*4) = 2 ; σ12 = 2.
        assert_eq!(lj.epsilon[lj.pair_index(0, 1)], 2.0);
        assert_eq!(lj.sigma[lj.pair_index(0, 1)], 2.0);
        assert_eq!(lj.name(), "lj/cut");
    }
}
