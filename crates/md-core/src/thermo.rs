//! Thermodynamic output: temperature, energies, pressure, conservation.
//!
//! The accuracy experiment of the paper (Fig. 3) tracks the *total* energy of
//! a 32 000-atom NVE run over a million steps and reports the relative
//! difference between the single- and double-precision solvers. The
//! [`ThermoState`] snapshot plus [`EnergyDriftTracker`] provide exactly the
//! quantities needed to regenerate that figure.

use crate::atom::AtomData;
use crate::simbox::SimBox;
use crate::units;
use crate::velocity;
use serde::{Deserialize, Serialize};

/// A snapshot of the global thermodynamic state at one timestep.
#[derive(Copy, Clone, Debug, Default, Serialize, Deserialize)]
pub struct ThermoState {
    /// Step index the snapshot was taken at.
    pub step: u64,
    /// Instantaneous temperature (K).
    pub temperature: f64,
    /// Kinetic energy (eV).
    pub kinetic: f64,
    /// Potential energy (eV).
    pub potential: f64,
    /// Total energy (eV).
    pub total: f64,
    /// Pressure (bar) from the virial.
    pub pressure: f64,
}

impl ThermoState {
    /// Compute a snapshot from the current atom data and force-compute
    /// results (serial kinetic-energy sum; the simulation loop uses
    /// [`ThermoState::from_kinetic`] with the runtime's chunked reduction).
    pub fn measure(
        step: u64,
        atoms: &AtomData,
        masses: &[f64],
        sim_box: &SimBox,
        potential_energy: f64,
        virial: f64,
    ) -> Self {
        let kinetic = velocity::kinetic_energy(atoms, masses);
        Self::from_kinetic(
            step,
            kinetic,
            atoms.n_local,
            sim_box,
            potential_energy,
            virial,
        )
    }

    /// Assemble a snapshot from an already-reduced kinetic energy — the form
    /// the simulation loop uses so the KE reduction can run on the shared
    /// [`crate::runtime::ParallelRuntime`].
    pub fn from_kinetic(
        step: u64,
        kinetic: f64,
        n_local: usize,
        sim_box: &SimBox,
        potential_energy: f64,
        virial: f64,
    ) -> Self {
        let temperature = units::temperature(kinetic, n_local);
        let volume = sim_box.volume();
        // P = (N kB T + W/3) / V, converted to bar.
        let pressure = if volume > 0.0 {
            units::NKTV2P * ((n_local as f64 * units::BOLTZMANN * temperature) + virial / 3.0)
                / volume
        } else {
            0.0
        };
        ThermoState {
            step,
            temperature,
            kinetic,
            potential: potential_energy,
            total: kinetic + potential_energy,
            pressure,
        }
    }

    /// Energy per atom (eV/atom), the number quoted for cohesive energies.
    pub fn energy_per_atom(&self, n_atoms: usize) -> f64 {
        if n_atoms == 0 {
            0.0
        } else {
            self.potential / n_atoms as f64
        }
    }
}

/// Tracks the drift of the total energy relative to a reference value —
/// the conservation check for NVE integration and the quantity plotted in
/// Fig. 3.
#[derive(Clone, Debug, Default)]
pub struct EnergyDriftTracker {
    reference: Option<f64>,
    max_abs_drift: f64,
    last_drift: f64,
    samples: usize,
}

impl EnergyDriftTracker {
    /// New tracker; the first recorded value becomes the reference.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a total-energy sample.
    pub fn record(&mut self, total_energy: f64) {
        match self.reference {
            None => {
                self.reference = Some(total_energy);
                self.last_drift = 0.0;
            }
            Some(reference) => {
                let denom = reference.abs().max(f64::MIN_POSITIVE);
                self.last_drift = (total_energy - reference) / denom;
                self.max_abs_drift = self.max_abs_drift.max(self.last_drift.abs());
            }
        }
        self.samples += 1;
    }

    /// Relative drift of the most recent sample.
    pub fn last_relative_drift(&self) -> f64 {
        self.last_drift
    }

    /// Largest relative drift seen so far.
    pub fn max_relative_drift(&self) -> f64 {
        self.max_abs_drift
    }

    /// Number of samples recorded.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// The reference (first) energy, if any sample was recorded.
    pub fn reference(&self) -> Option<f64> {
        self.reference
    }
}

/// Relative difference between two energies — the metric of Fig. 3
/// (|E_single − E_double| / |E_double|).
pub fn relative_energy_difference(value: f64, reference: f64) -> f64 {
    (value - reference).abs() / reference.abs().max(f64::MIN_POSITIVE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::Lattice;

    #[test]
    fn ideal_gas_pressure_limit() {
        // With zero virial the pressure reduces to N kB T / V.
        let (sim_box, mut atoms) = Lattice::silicon([2, 2, 2]).build();
        let masses = [units::mass::SI];
        velocity::init_velocities(&mut atoms, &masses, 300.0, 5);
        let thermo = ThermoState::measure(0, &atoms, &masses, &sim_box, 0.0, 0.0);
        let expected =
            units::NKTV2P * atoms.n_local as f64 * units::BOLTZMANN * 300.0 / sim_box.volume();
        assert!((thermo.pressure - expected).abs() / expected < 1e-9);
        assert!((thermo.temperature - 300.0).abs() < 1e-9);
        assert_eq!(thermo.total, thermo.kinetic);
    }

    #[test]
    fn energy_per_atom() {
        let t = ThermoState {
            potential: -128.0,
            ..Default::default()
        };
        assert_eq!(t.energy_per_atom(32), -4.0);
        assert_eq!(t.energy_per_atom(0), 0.0);
    }

    #[test]
    fn drift_tracker_uses_first_sample_as_reference() {
        let mut d = EnergyDriftTracker::new();
        d.record(-100.0);
        assert_eq!(d.last_relative_drift(), 0.0);
        d.record(-100.001);
        assert!((d.last_relative_drift() + 1e-5).abs() < 1e-12);
        d.record(-99.9);
        assert!((d.max_relative_drift() - 1e-3).abs() < 1e-9);
        assert_eq!(d.samples(), 3);
        assert_eq!(d.reference(), Some(-100.0));
    }

    #[test]
    fn relative_difference_is_symmetric_in_magnitude() {
        assert!((relative_energy_difference(-100.002, -100.0) - 2e-5).abs() < 1e-12);
        assert_eq!(relative_energy_difference(5.0, 5.0), 0.0);
    }
}
