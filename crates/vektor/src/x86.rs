//! Raw `std::arch` implementations of the dispatched vector operations.
//!
//! Every function here is an `unsafe fn` carrying a `#[target_feature]`
//! attribute: it may be called **only** after the corresponding CPU feature
//! has been verified at run time (`is_x86_feature_detected!`), which is the
//! invariant [`crate::dispatch`] maintains — the AVX2 functions are reached
//! only when `avx2` **and** `fma` are present, the AVX-512 functions only
//! when `avx512f` (plus `avx2`/`fma`) is present.
//!
//! Bitwise contract: each function reproduces the portable array
//! implementation **bit for bit**. For data movement (gather, blend, masked
//! store) this is automatic; for `mul_add` both sides are fused; for the
//! horizontal sums the shuffle sequences reproduce the exact pairwise
//! association of `SimdF::horizontal_sum` (`buf[i] += buf[n-1-i]`,
//! halving). The equivalence is enforced by
//! `crates/vektor/tests/backend_equivalence.rs`.

#![allow(clippy::missing_safety_doc)] // module-level safety contract above

use core::arch::x86_64::*;

/// `-1i64`/`0` lane pattern for an AVX2 double-precision blend mask.
#[inline(always)]
fn m64(b: bool) -> i64 {
    if b {
        -1
    } else {
        0
    }
}

/// `-1i32`/`0` lane pattern for an AVX2 single-precision blend mask.
#[inline(always)]
fn m32(b: bool) -> i32 {
    if b {
        -1
    } else {
        0
    }
}

/// Pack a bool array into an AVX-512 lane-mask (bit i = lane i).
#[inline(always)]
fn kmask<const W: usize>(mask: &[bool; W]) -> u16 {
    let mut k = 0u16;
    for (i, &b) in mask.iter().enumerate() {
        k |= (b as u16) << i;
    }
    k
}

// ---------------------------------------------------------------------------
// AVX2 + FMA: 4 × f64
// ---------------------------------------------------------------------------

#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn gather_f64x4(src: &[f64], idx: &[usize; 4]) -> [f64; 4] {
    for &i in idx {
        debug_assert!(i < src.len() && i <= i32::MAX as usize);
    }
    let offsets = _mm_setr_epi32(idx[0] as i32, idx[1] as i32, idx[2] as i32, idx[3] as i32);
    core::mem::transmute(_mm256_i32gather_pd::<8>(src.as_ptr(), offsets))
}

#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn gather_masked_f64x4(
    src: &[f64],
    idx: &[usize; 4],
    mask: &[bool; 4],
    fill: f64,
) -> [f64; 4] {
    for lane in 0..4 {
        debug_assert!(!mask[lane] || (idx[lane] < src.len() && idx[lane] <= i32::MAX as usize));
    }
    // Inactive lanes are not dereferenced by VGATHER, but zero their offsets
    // anyway so wild sentinel indices never reach the instruction.
    let off = |l: usize| if mask[l] { idx[l] as i32 } else { 0 };
    let offsets = _mm_setr_epi32(off(0), off(1), off(2), off(3));
    let m = _mm256_castsi256_pd(_mm256_setr_epi64x(
        m64(mask[0]),
        m64(mask[1]),
        m64(mask[2]),
        m64(mask[3]),
    ));
    let fillv = _mm256_set1_pd(fill);
    core::mem::transmute(_mm256_mask_i32gather_pd::<8>(
        fillv,
        src.as_ptr(),
        offsets,
        m,
    ))
}

#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn select_f64x4(mask: &[bool; 4], t: &[f64; 4], f: &[f64; 4]) -> [f64; 4] {
    let m = _mm256_castsi256_pd(_mm256_setr_epi64x(
        m64(mask[0]),
        m64(mask[1]),
        m64(mask[2]),
        m64(mask[3]),
    ));
    let tv: __m256d = core::mem::transmute(*t);
    let fv: __m256d = core::mem::transmute(*f);
    core::mem::transmute(_mm256_blendv_pd(fv, tv, m))
}

#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn store_masked_f64x4(dst: &mut [f64], offset: usize, mask: &[bool; 4], v: &[f64; 4]) {
    for lane in 0..4 {
        debug_assert!(!mask[lane] || offset + lane < dst.len());
    }
    debug_assert!(offset <= dst.len());
    let m = _mm256_setr_epi64x(m64(mask[0]), m64(mask[1]), m64(mask[2]), m64(mask[3]));
    let vv: __m256d = core::mem::transmute(*v);
    _mm256_maskstore_pd(dst.as_mut_ptr().add(offset), m, vv);
}

#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn mul_add_f64x4(a: &[f64; 4], b: &[f64; 4], c: &[f64; 4]) -> [f64; 4] {
    let av: __m256d = core::mem::transmute(*a);
    let bv: __m256d = core::mem::transmute(*b);
    let cv: __m256d = core::mem::transmute(*c);
    core::mem::transmute(_mm256_fmadd_pd(av, bv, cv))
}

/// Horizontal sum matching the portable association
/// `(a0 + a3) + (a1 + a2)` exactly.
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn hsum_f64x4(v: &[f64; 4]) -> f64 {
    let vv: __m256d = core::mem::transmute(*v);
    // [a3, a2, a1, a0]
    let rev = _mm256_permute4x64_pd::<0b00_01_10_11>(vv);
    // [a0+a3, a1+a2, a2+a1, a3+a0]
    let s = _mm256_add_pd(vv, rev);
    let lo = _mm256_castpd256_pd128(s);
    let hi = _mm_unpackhi_pd(lo, lo);
    _mm_cvtsd_f64(_mm_add_sd(lo, hi))
}

// ---------------------------------------------------------------------------
// AVX2 + FMA: 8 × f32
// ---------------------------------------------------------------------------

#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn gather_f32x8(src: &[f32], idx: &[usize; 8]) -> [f32; 8] {
    for &i in idx {
        debug_assert!(i < src.len() && i <= i32::MAX as usize);
    }
    let mut off = [0i32; 8];
    for lane in 0..8 {
        off[lane] = idx[lane] as i32;
    }
    let offsets: __m256i = core::mem::transmute(off);
    core::mem::transmute(_mm256_i32gather_ps::<4>(src.as_ptr(), offsets))
}

#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn gather_masked_f32x8(
    src: &[f32],
    idx: &[usize; 8],
    mask: &[bool; 8],
    fill: f32,
) -> [f32; 8] {
    let mut off = [0i32; 8];
    let mut m = [0i32; 8];
    for lane in 0..8 {
        debug_assert!(!mask[lane] || (idx[lane] < src.len() && idx[lane] <= i32::MAX as usize));
        if mask[lane] {
            off[lane] = idx[lane] as i32;
            m[lane] = -1;
        }
    }
    let offsets: __m256i = core::mem::transmute(off);
    let maskv = _mm256_castsi256_ps(core::mem::transmute::<[i32; 8], __m256i>(m));
    let fillv = _mm256_set1_ps(fill);
    core::mem::transmute(_mm256_mask_i32gather_ps::<4>(
        fillv,
        src.as_ptr(),
        offsets,
        maskv,
    ))
}

#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn select_f32x8(mask: &[bool; 8], t: &[f32; 8], f: &[f32; 8]) -> [f32; 8] {
    let mut m = [0i32; 8];
    for lane in 0..8 {
        m[lane] = m32(mask[lane]);
    }
    let maskv = _mm256_castsi256_ps(core::mem::transmute::<[i32; 8], __m256i>(m));
    let tv: __m256 = core::mem::transmute(*t);
    let fv: __m256 = core::mem::transmute(*f);
    core::mem::transmute(_mm256_blendv_ps(fv, tv, maskv))
}

#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn store_masked_f32x8(dst: &mut [f32], offset: usize, mask: &[bool; 8], v: &[f32; 8]) {
    debug_assert!(offset <= dst.len());
    let mut m = [0i32; 8];
    for lane in 0..8 {
        debug_assert!(!mask[lane] || offset + lane < dst.len());
        m[lane] = m32(mask[lane]);
    }
    let maskv: __m256i = core::mem::transmute(m);
    let vv: __m256 = core::mem::transmute(*v);
    _mm256_maskstore_ps(dst.as_mut_ptr().add(offset), maskv, vv);
}

#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn mul_add_f32x8(a: &[f32; 8], b: &[f32; 8], c: &[f32; 8]) -> [f32; 8] {
    let av: __m256 = core::mem::transmute(*a);
    let bv: __m256 = core::mem::transmute(*b);
    let cv: __m256 = core::mem::transmute(*c);
    core::mem::transmute(_mm256_fmadd_ps(av, bv, cv))
}

/// Horizontal sum matching the portable association
/// `((a0+a7) + (a3+a4)) + ((a1+a6) + (a2+a5))` exactly.
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn hsum_f32x8(v: &[f32; 8]) -> f32 {
    let vv: __m256 = core::mem::transmute(*v);
    let rev = _mm256_permutevar8x32_ps(vv, _mm256_setr_epi32(7, 6, 5, 4, 3, 2, 1, 0));
    // lane i = a_i + a_{7-i}
    let s = _mm256_add_ps(vv, rev);
    let lo = _mm256_castps256_ps128(s); // [s0, s1, s2, s3]
    let rev4 = _mm_shuffle_ps::<0b00_01_10_11>(lo, lo); // [s3, s2, s1, s0]
    let t = _mm_add_ps(lo, rev4); // [s0+s3, s1+s2, ..]
    let hi = _mm_movehdup_ps(t); // [t1, t1, t3, t3]
    _mm_cvtss_f32(_mm_add_ss(t, hi))
}

// ---------------------------------------------------------------------------
// AVX-512F: 8 × f64
// ---------------------------------------------------------------------------

#[inline]
#[target_feature(enable = "avx512f", enable = "avx2", enable = "fma")]
pub unsafe fn gather_f64x8(src: &[f64], idx: &[usize; 8]) -> [f64; 8] {
    let mut off = [0i32; 8];
    for lane in 0..8 {
        debug_assert!(idx[lane] < src.len() && idx[lane] <= i32::MAX as usize);
        off[lane] = idx[lane] as i32;
    }
    let offsets: __m256i = core::mem::transmute(off);
    core::mem::transmute(_mm512_i32gather_pd::<8>(offsets, src.as_ptr()))
}

#[inline]
#[target_feature(enable = "avx512f", enable = "avx2", enable = "fma")]
pub unsafe fn gather_masked_f64x8(
    src: &[f64],
    idx: &[usize; 8],
    mask: &[bool; 8],
    fill: f64,
) -> [f64; 8] {
    let mut off = [0i32; 8];
    for lane in 0..8 {
        debug_assert!(!mask[lane] || (idx[lane] < src.len() && idx[lane] <= i32::MAX as usize));
        if mask[lane] {
            off[lane] = idx[lane] as i32;
        }
    }
    let offsets: __m256i = core::mem::transmute(off);
    let k = kmask(mask) as __mmask8;
    let fillv = _mm512_set1_pd(fill);
    core::mem::transmute(_mm512_mask_i32gather_pd::<8>(
        fillv,
        k,
        offsets,
        src.as_ptr(),
    ))
}

#[inline]
#[target_feature(enable = "avx512f", enable = "avx2", enable = "fma")]
pub unsafe fn select_f64x8(mask: &[bool; 8], t: &[f64; 8], f: &[f64; 8]) -> [f64; 8] {
    let k = kmask(mask) as __mmask8;
    let tv: __m512d = core::mem::transmute(*t);
    let fv: __m512d = core::mem::transmute(*f);
    core::mem::transmute(_mm512_mask_blend_pd(k, fv, tv))
}

#[inline]
#[target_feature(enable = "avx512f", enable = "avx2", enable = "fma")]
pub unsafe fn mul_add_f64x8(a: &[f64; 8], b: &[f64; 8], c: &[f64; 8]) -> [f64; 8] {
    let av: __m512d = core::mem::transmute(*a);
    let bv: __m512d = core::mem::transmute(*b);
    let cv: __m512d = core::mem::transmute(*c);
    core::mem::transmute(_mm512_fmadd_pd(av, bv, cv))
}

/// Horizontal sum matching the portable W = 8 association exactly:
/// `s_i = a_i + a_{7-i}` then the 4-lane pattern on `s0..s3`.
#[inline]
#[target_feature(enable = "avx512f", enable = "avx2", enable = "fma")]
pub unsafe fn hsum_f64x8(v: &[f64; 8]) -> f64 {
    let vv: __m512d = core::mem::transmute(*v);
    let rev = _mm512_permutexvar_pd(_mm512_setr_epi64(7, 6, 5, 4, 3, 2, 1, 0), vv);
    let s = _mm512_add_pd(vv, rev);
    let lo256 = _mm512_castpd512_pd256(s); // [s0, s1, s2, s3]
    let rev4 = _mm256_permute4x64_pd::<0b00_01_10_11>(lo256);
    let t = _mm256_add_pd(lo256, rev4); // [s0+s3, s1+s2, ..]
    let lo = _mm256_castpd256_pd128(t);
    let hi = _mm_unpackhi_pd(lo, lo);
    _mm_cvtsd_f64(_mm_add_sd(lo, hi))
}

/// Conflict-free scatter-accumulate (read-modify-write) of 8 f64 lanes with
/// **pairwise-distinct** active indices: `dst[idx[lane]] += v[lane]`.
#[inline]
#[target_feature(enable = "avx512f", enable = "avx2", enable = "fma")]
pub unsafe fn scatter_add_f64x8(dst: &mut [f64], idx: &[usize; 8], mask: &[bool; 8], v: &[f64; 8]) {
    let mut off = [0i32; 8];
    for lane in 0..8 {
        debug_assert!(!mask[lane] || (idx[lane] < dst.len() && idx[lane] <= i32::MAX as usize));
        if mask[lane] {
            off[lane] = idx[lane] as i32;
        }
    }
    let offsets: __m256i = core::mem::transmute(off);
    let k = kmask(mask) as __mmask8;
    let cur = _mm512_mask_i32gather_pd::<8>(_mm512_setzero_pd(), k, offsets, dst.as_ptr());
    let add: __m512d = core::mem::transmute(*v);
    let sum = _mm512_add_pd(cur, add);
    _mm512_mask_i32scatter_pd::<8>(dst.as_mut_ptr(), k, offsets, sum);
}

// ---------------------------------------------------------------------------
// AVX-512F: 16 × f32
// ---------------------------------------------------------------------------

#[inline]
#[target_feature(enable = "avx512f", enable = "avx2", enable = "fma")]
pub unsafe fn gather_f32x16(src: &[f32], idx: &[usize; 16]) -> [f32; 16] {
    let mut off = [0i32; 16];
    for lane in 0..16 {
        debug_assert!(idx[lane] < src.len() && idx[lane] <= i32::MAX as usize);
        off[lane] = idx[lane] as i32;
    }
    let offsets: __m512i = core::mem::transmute(off);
    core::mem::transmute(_mm512_i32gather_ps::<4>(offsets, src.as_ptr()))
}

#[inline]
#[target_feature(enable = "avx512f", enable = "avx2", enable = "fma")]
pub unsafe fn gather_masked_f32x16(
    src: &[f32],
    idx: &[usize; 16],
    mask: &[bool; 16],
    fill: f32,
) -> [f32; 16] {
    let mut off = [0i32; 16];
    for lane in 0..16 {
        debug_assert!(!mask[lane] || (idx[lane] < src.len() && idx[lane] <= i32::MAX as usize));
        if mask[lane] {
            off[lane] = idx[lane] as i32;
        }
    }
    let offsets: __m512i = core::mem::transmute(off);
    let k = kmask(mask);
    let fillv = _mm512_set1_ps(fill);
    core::mem::transmute(_mm512_mask_i32gather_ps::<4>(
        fillv,
        k,
        offsets,
        src.as_ptr(),
    ))
}

#[inline]
#[target_feature(enable = "avx512f", enable = "avx2", enable = "fma")]
pub unsafe fn select_f32x16(mask: &[bool; 16], t: &[f32; 16], f: &[f32; 16]) -> [f32; 16] {
    let k = kmask(mask);
    let tv: __m512 = core::mem::transmute(*t);
    let fv: __m512 = core::mem::transmute(*f);
    core::mem::transmute(_mm512_mask_blend_ps(k, fv, tv))
}

#[inline]
#[target_feature(enable = "avx512f", enable = "avx2", enable = "fma")]
pub unsafe fn mul_add_f32x16(a: &[f32; 16], b: &[f32; 16], c: &[f32; 16]) -> [f32; 16] {
    let av: __m512 = core::mem::transmute(*a);
    let bv: __m512 = core::mem::transmute(*b);
    let cv: __m512 = core::mem::transmute(*c);
    core::mem::transmute(_mm512_fmadd_ps(av, bv, cv))
}

/// Horizontal sum matching the portable W = 16 association exactly:
/// `s_i = a_i + a_{15-i}` then the 8-lane pattern on `s0..s7`.
#[inline]
#[target_feature(enable = "avx512f", enable = "avx2", enable = "fma")]
pub unsafe fn hsum_f32x16(v: &[f32; 16]) -> f32 {
    let vv: __m512 = core::mem::transmute(*v);
    let rev16 = _mm512_permutexvar_ps(
        _mm512_setr_epi32(15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0),
        vv,
    );
    let s = _mm512_add_ps(vv, rev16);
    let lo256 = _mm512_castps512_ps256(s); // [s0..s7]
    let rev8 = _mm256_permutevar8x32_ps(lo256, _mm256_setr_epi32(7, 6, 5, 4, 3, 2, 1, 0));
    let t = _mm256_add_ps(lo256, rev8); // lane i = s_i + s_{7-i}
    let lo = _mm256_castps256_ps128(t); // [t0, t1, t2, t3]
    let rev4 = _mm_shuffle_ps::<0b00_01_10_11>(lo, lo);
    let u = _mm_add_ps(lo, rev4); // [t0+t3, t1+t2, ..]
    let hi = _mm_movehdup_ps(u);
    _mm_cvtss_f32(_mm_add_ss(u, hi))
}

/// Conflict-free scatter-accumulate of 16 f32 lanes with pairwise-distinct
/// active indices.
#[inline]
#[target_feature(enable = "avx512f", enable = "avx2", enable = "fma")]
pub unsafe fn scatter_add_f32x16(
    dst: &mut [f32],
    idx: &[usize; 16],
    mask: &[bool; 16],
    v: &[f32; 16],
) {
    let mut off = [0i32; 16];
    for lane in 0..16 {
        debug_assert!(!mask[lane] || (idx[lane] < dst.len() && idx[lane] <= i32::MAX as usize));
        if mask[lane] {
            off[lane] = idx[lane] as i32;
        }
    }
    let offsets: __m512i = core::mem::transmute(off);
    let k = kmask(mask);
    let cur = _mm512_mask_i32gather_ps::<4>(_mm512_setzero_ps(), k, offsets, dst.as_ptr());
    let add: __m512 = core::mem::transmute(*v);
    let sum = _mm512_add_ps(cur, add);
    _mm512_mask_i32scatter_ps::<4>(dst.as_mut_ptr(), k, offsets, sum);
}
