//! Vectorized transcendental functions.
//!
//! The Tersoff kernel spends most of its flops in `exp`, `sin`/`cos` (the
//! smooth cutoff) and `pow` (the bond-order term). This module provides
//! lane-wise wrappers around the scalar libm calls plus *reduced accuracy*
//! polynomial variants, mirroring the "lower accuracy math functions" the
//! paper credits for part of the single-precision speedup on ARM/x86
//! (Sec. VI-A). The fast variants are only used by the single-precision
//! pipeline; the double-precision pipeline always uses full-accuracy calls.

use crate::real::Real;
use crate::vector::SimdF;

/// Lane-wise natural exponential (full accuracy).
#[inline(always)]
pub fn exp<T: Real, const W: usize>(v: SimdF<T, W>) -> SimdF<T, W> {
    v.map(|x| x.exp())
}

/// Lane-wise sine (full accuracy).
#[inline(always)]
pub fn sin<T: Real, const W: usize>(v: SimdF<T, W>) -> SimdF<T, W> {
    v.map(|x| x.sin())
}

/// Lane-wise cosine (full accuracy).
#[inline(always)]
pub fn cos<T: Real, const W: usize>(v: SimdF<T, W>) -> SimdF<T, W> {
    v.map(|x| x.cos())
}

/// Lane-wise power with a uniform exponent.
#[inline(always)]
pub fn powf_uniform<T: Real, const W: usize>(v: SimdF<T, W>, e: T) -> SimdF<T, W> {
    v.map(|x| x.powf(e))
}

/// Lane-wise cube (`x³`), the exponent that appears in the Tersoff
/// `exp(λ₃³ (r_ij − r_ik)³)` term.
#[inline(always)]
pub fn cube<T: Real, const W: usize>(v: SimdF<T, W>) -> SimdF<T, W> {
    v * v * v
}

/// Reduced-accuracy exponential: a degree-6 polynomial on a range-reduced
/// argument. Relative error is below 3e-6 over the argument range that occurs
/// in the Tersoff kernel (|x| ≲ 70 after clamping), which is ample for the
/// single-precision pipeline whose inputs carry ~1e-7 relative error anyway.
#[inline(always)]
pub fn fast_exp<T: Real, const W: usize>(v: SimdF<T, W>) -> SimdF<T, W> {
    v.map(fast_exp_scalar)
}

/// Scalar reduced-accuracy exponential used by [`fast_exp`].
///
/// Algorithm: write `x = k·ln2 + r` with `|r| ≤ ln2/2`, evaluate a degree-6
/// Taylor/minimax hybrid for `exp(r)` and scale by `2^k` via exponent
/// manipulation in `f64` (then round to the lane type).
#[inline(always)]
pub fn fast_exp_scalar<T: Real>(x: T) -> T {
    let xf = x.to_f64();
    // Clamp to the same range the kernel clamps to (LAMMPS uses ±69.0776).
    let xf = xf.clamp(-87.0, 88.0);
    const LOG2E: f64 = std::f64::consts::LOG2_E;
    const LN2: f64 = std::f64::consts::LN_2;
    let k = (xf * LOG2E).round();
    let r = xf - k * LN2;
    // exp(r) for |r| <= ln2/2 ~= 0.3466: degree-6 polynomial.
    let p = 1.0
        + r * (1.0
            + r * (0.5
                + r * (1.0 / 6.0 + r * (1.0 / 24.0 + r * (1.0 / 120.0 + r * (1.0 / 720.0))))));
    let scale = f64::from_bits((((k as i64) + 1023) as u64) << 52);
    T::from_f64(p * scale)
}

/// Reduced-accuracy sine for arguments in `[-π/2, π/2]` (the only range the
/// cutoff function needs): degree-7 odd polynomial, max abs error ≈ 6e-7.
#[inline(always)]
pub fn fast_sin_halfpi<T: Real, const W: usize>(v: SimdF<T, W>) -> SimdF<T, W> {
    v.map(fast_sin_halfpi_scalar)
}

/// Scalar reduced-accuracy sine on `[-π/2, π/2]`.
#[inline(always)]
pub fn fast_sin_halfpi_scalar<T: Real>(x: T) -> T {
    let xf = x.to_f64();
    let x2 = xf * xf;
    // sin(x) ≈ x (1 - x²/6 + x⁴/120 - x⁶/5040 + x⁸/362880)
    let p =
        xf * (1.0 + x2 * (-1.0 / 6.0 + x2 * (1.0 / 120.0 + x2 * (-1.0 / 5040.0 + x2 / 362_880.0))));
    T::from_f64(p)
}

/// Reduced-accuracy cosine for arguments in `[-π/2, π/2]`: degree-8 even
/// polynomial.
#[inline(always)]
pub fn fast_cos_halfpi<T: Real, const W: usize>(v: SimdF<T, W>) -> SimdF<T, W> {
    v.map(fast_cos_halfpi_scalar)
}

/// Scalar reduced-accuracy cosine on `[-π/2, π/2]`.
#[inline(always)]
pub fn fast_cos_halfpi_scalar<T: Real>(x: T) -> T {
    let xf = x.to_f64();
    let x2 = xf * xf;
    let p = 1.0
        + x2 * (-0.5
            + x2 * (1.0 / 24.0 + x2 * (-1.0 / 720.0 + x2 * (1.0 / 40_320.0 - x2 / 3_628_800.0))));
    T::from_f64(p)
}

/// Inverse square root: `1/sqrt(x)` per lane. On hardware this is the rsqrt +
/// Newton-Raphson idiom; here the scalar sqrt is accurate enough and LLVM
/// picks the best lowering.
#[inline(always)]
pub fn rsqrt<T: Real, const W: usize>(v: SimdF<T, W>) -> SimdF<T, W> {
    v.map(|x| x.sqrt().recip())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_matches_std_per_lane() {
        let v = SimdF::<f64, 4>::from_array([0.0, 1.0, -2.0, 0.5]);
        let e = exp(v);
        for i in 0..4 {
            assert_eq!(e.lane(i), v.lane(i).exp());
        }
    }

    #[test]
    fn fast_exp_accuracy_over_kernel_range() {
        // The kernel's exponential arguments: -λ₁·r (≈ -10..0) and the
        // clamped ±69 range of the ζ exponential.
        let mut worst = 0.0f64;
        let mut x = -69.0;
        while x <= 69.0 {
            let approx = fast_exp_scalar::<f64>(x);
            let exact = x.exp();
            let rel = ((approx - exact) / exact).abs();
            worst = worst.max(rel);
            x += 0.037;
        }
        assert!(worst < 3e-6, "worst relative error {worst}");
    }

    #[test]
    fn fast_exp_of_zero_and_one() {
        assert!((fast_exp_scalar::<f64>(0.0) - 1.0).abs() < 1e-12);
        assert!((fast_exp_scalar::<f64>(1.0) - std::f64::consts::E).abs() < 1e-5);
    }

    #[test]
    fn fast_exp_clamps_extremes() {
        assert!(fast_exp_scalar::<f64>(1000.0).is_finite());
        assert!(fast_exp_scalar::<f64>(-1000.0) >= 0.0);
        assert!(fast_exp_scalar::<f64>(-1000.0) < 1e-30);
    }

    #[test]
    fn fast_sin_cos_accuracy_on_halfpi_range() {
        let mut x = -std::f64::consts::FRAC_PI_2;
        let mut worst_s = 0.0f64;
        let mut worst_c = 0.0f64;
        while x <= std::f64::consts::FRAC_PI_2 {
            worst_s = worst_s.max((fast_sin_halfpi_scalar::<f64>(x) - x.sin()).abs());
            worst_c = worst_c.max((fast_cos_halfpi_scalar::<f64>(x) - x.cos()).abs());
            x += 0.01;
        }
        assert!(worst_s < 1e-5, "sin error {worst_s}");
        assert!(worst_c < 1e-5, "cos error {worst_c}");
    }

    #[test]
    fn cube_and_powf() {
        let v = SimdF::<f64, 4>::from_array([1.0, 2.0, 3.0, -2.0]);
        assert_eq!(cube(v).to_array(), [1.0, 8.0, 27.0, -8.0]);
        let p = powf_uniform(SimdF::<f64, 2>::from_array([4.0, 9.0]), 0.5);
        assert_eq!(p.to_array(), [2.0, 3.0]);
    }

    #[test]
    fn rsqrt_matches_definition() {
        let v = SimdF::<f64, 4>::from_array([1.0, 4.0, 16.0, 0.25]);
        let r = rsqrt(v);
        assert_eq!(r.to_array(), [1.0, 0.5, 0.25, 2.0]);
    }

    #[test]
    fn fast_variants_work_in_f32() {
        let x = 0.3f32;
        assert!((fast_exp_scalar::<f32>(x) - x.exp()).abs() < 1e-5);
        assert!((fast_sin_halfpi_scalar::<f32>(x) - x.sin()).abs() < 1e-5);
        assert!((fast_cos_halfpi_scalar::<f32>(x) - x.cos()).abs() < 1e-5);
    }
}
