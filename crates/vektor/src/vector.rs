//! The real-valued vector type `SimdF<T, W>`.
//!
//! One value per lane, `W` lanes, element type `T: Real`. All arithmetic is
//! lane-wise. Comparisons produce a [`SimdM`] mask; `select` combines two
//! vectors under a mask. This is the type the Tersoff computational kernels
//! are written against; instantiating `W = 1` yields the scalar back-end and
//! larger widths yield the SSE/AVX/IMCI/AVX-512/warp analogues.
//!
//! The inherent methods here are the **portable** implementations (the
//! [`crate::PortableBackend`] defaults). Kernels that want the explicit
//! intrinsic paths call the same operations through a `B: SimdBackend` type
//! parameter (`B::gather`, `B::select`, ...) and are launched via the
//! [`crate::dispatch::run_kernel`] trampoline, which monomorphizes the body
//! per implementation — there is no per-op runtime routing anymore.

use crate::mask::SimdM;
use crate::real::Real;
use crate::simd_backend::{PortableBackend, SimdBackend};
use std::ops::{
    Add, AddAssign, Div, DivAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign,
};

/// A vector of `W` lanes of the floating-point type `T`.
#[derive(Copy, Clone, Debug, PartialEq)]
#[repr(align(64))]
pub struct SimdF<T: Real, const W: usize>(pub [T; W]);

impl<T: Real, const W: usize> SimdF<T, W> {
    /// Number of lanes.
    pub const WIDTH: usize = W;

    /// Broadcast a scalar to all lanes.
    #[inline(always)]
    pub fn splat(x: T) -> Self {
        SimdF([x; W])
    }

    /// All lanes zero.
    #[inline(always)]
    pub fn zero() -> Self {
        Self::splat(T::ZERO)
    }

    /// All lanes one.
    #[inline(always)]
    pub fn one() -> Self {
        Self::splat(T::ONE)
    }

    /// Construct from an array of lane values.
    #[inline(always)]
    pub fn from_array(a: [T; W]) -> Self {
        SimdF(a)
    }

    /// Lane values as an array.
    #[inline(always)]
    pub fn to_array(self) -> [T; W] {
        self.0
    }

    /// Build a vector by calling `f(lane)` for each lane index.
    #[inline(always)]
    pub fn from_fn(mut f: impl FnMut(usize) -> T) -> Self {
        let mut out = [T::ZERO; W];
        for (i, lane) in out.iter_mut().enumerate() {
            *lane = f(i);
        }
        SimdF(out)
    }

    /// Read one lane.
    #[inline(always)]
    pub fn lane(&self, i: usize) -> T {
        self.0[i]
    }

    /// Write one lane.
    #[inline(always)]
    pub fn set_lane(&mut self, i: usize, x: T) {
        self.0[i] = x;
    }

    /// Contiguous (aligned or unaligned) load of `W` consecutive elements
    /// starting at `slice[offset]`.
    ///
    /// Panics if the slice is too short; the caller (the "filter" component
    /// in the paper's terminology) is responsible for padding its buffers to
    /// a multiple of the vector width.
    #[inline(always)]
    pub fn load(slice: &[T], offset: usize) -> Self {
        let mut out = [T::ZERO; W];
        out.copy_from_slice(&slice[offset..offset + W]);
        SimdF(out)
    }

    /// Contiguous load that tolerates a short tail: missing lanes are filled
    /// with `fill` and the returned mask marks the lanes actually loaded.
    #[inline(always)]
    pub fn load_partial(slice: &[T], offset: usize, fill: T) -> (Self, SimdM<W>) {
        let avail = slice.len().saturating_sub(offset).min(W);
        let mut out = [fill; W];
        if avail > 0 {
            out[..avail].copy_from_slice(&slice[offset..offset + avail]);
        }
        (SimdF(out), SimdM::prefix(avail))
    }

    /// Contiguous store of all lanes into `slice[offset..offset + W]`.
    #[inline(always)]
    pub fn store(self, slice: &mut [T], offset: usize) {
        slice[offset..offset + W].copy_from_slice(&self.0);
    }

    /// Store only the lanes whose mask bit is set (portable lane loop; the
    /// AVX2 backend's `vmaskmov` is reached via `B::store_masked` inside a
    /// trampolined kernel).
    #[inline(always)]
    pub fn store_masked(self, slice: &mut [T], offset: usize, mask: SimdM<W>) {
        PortableBackend::store_masked(self, slice, offset, mask)
    }

    /// Gather `slice[idx[lane]]` into each lane. Out-of-use lanes should be
    /// masked by the caller; indices must be in bounds.
    ///
    /// Portable lane loop; hardware `vgatherdpd`/`vgatherdps` are reached
    /// via `B::gather` inside a trampolined kernel.
    #[inline(always)]
    pub fn gather(slice: &[T], idx: &[usize; W]) -> Self {
        PortableBackend::gather(slice, idx)
    }

    /// Masked gather: inactive lanes receive `fill` and their indices are not
    /// dereferenced (so they may be out of range).
    ///
    /// Portable lane loop; hardware masked gathers are reached via
    /// `B::gather_masked` inside a trampolined kernel.
    #[inline(always)]
    pub fn gather_masked(slice: &[T], idx: &[usize; W], mask: SimdM<W>, fill: T) -> Self {
        PortableBackend::gather_masked(slice, idx, mask, fill)
    }

    /// Lane-wise map with an arbitrary scalar function. The math wrappers in
    /// [`crate::math`] are built on this.
    #[inline(always)]
    pub fn map(self, mut f: impl FnMut(T) -> T) -> Self {
        let mut out = self.0;
        for lane in out.iter_mut() {
            *lane = f(*lane);
        }
        SimdF(out)
    }

    /// Lane-wise zip-map of two vectors.
    #[inline(always)]
    pub fn zip_map(self, other: Self, mut f: impl FnMut(T, T) -> T) -> Self {
        let mut out = self.0;
        for i in 0..W {
            out[i] = f(out[i], other.0[i]);
        }
        SimdF(out)
    }

    /// Lane-wise select: `mask ? self : other` (portable; `vblendv` /
    /// AVX-512 mask blends are reached via `B::select` inside a trampolined
    /// kernel).
    #[inline(always)]
    pub fn select(mask: SimdM<W>, if_true: Self, if_false: Self) -> Self {
        PortableBackend::select(mask, if_true, if_false)
    }

    /// Zero the lanes where the mask is not set.
    #[inline(always)]
    pub fn masked(self, mask: SimdM<W>) -> Self {
        Self::select(mask, self, Self::zero())
    }

    /// Fused multiply-add: `self * a + b` per lane (portable scalar `fma`;
    /// `vfmadd` is reached via `B::mul_add` inside a trampolined kernel —
    /// both paths fuse, so results are bitwise identical).
    #[inline(always)]
    pub fn mul_add(self, a: Self, b: Self) -> Self {
        PortableBackend::mul_add(self, a, b)
    }

    /// Lane-wise square root.
    #[inline(always)]
    pub fn sqrt(self) -> Self {
        self.map(|x| x.sqrt())
    }

    /// Lane-wise reciprocal.
    #[inline(always)]
    pub fn recip(self) -> Self {
        self.map(|x| x.recip())
    }

    /// Lane-wise absolute value.
    #[inline(always)]
    pub fn abs(self) -> Self {
        self.map(|x| x.abs())
    }

    /// Lane-wise minimum.
    #[inline(always)]
    pub fn min(self, o: Self) -> Self {
        self.zip_map(o, |a, b| a.min(b))
    }

    /// Lane-wise maximum.
    #[inline(always)]
    pub fn max(self, o: Self) -> Self {
        self.zip_map(o, |a, b| a.max(b))
    }

    /// Clamp every lane to `[lo, hi]`.
    #[inline(always)]
    pub fn clamp(self, lo: T, hi: T) -> Self {
        self.map(|x| x.max(lo).min(hi))
    }

    /// Lane-wise comparison: `self < o`.
    #[inline(always)]
    pub fn simd_lt(self, o: Self) -> SimdM<W> {
        let mut m = [false; W];
        for i in 0..W {
            m[i] = self.0[i] < o.0[i];
        }
        SimdM::from_array(m)
    }

    /// Lane-wise comparison: `self <= o`.
    #[inline(always)]
    pub fn simd_le(self, o: Self) -> SimdM<W> {
        let mut m = [false; W];
        for i in 0..W {
            m[i] = self.0[i] <= o.0[i];
        }
        SimdM::from_array(m)
    }

    /// Lane-wise comparison: `self > o`.
    #[inline(always)]
    pub fn simd_gt(self, o: Self) -> SimdM<W> {
        o.simd_lt(self)
    }

    /// Lane-wise comparison: `self >= o`.
    #[inline(always)]
    pub fn simd_ge(self, o: Self) -> SimdM<W> {
        o.simd_le(self)
    }

    /// Lane-wise equality.
    #[inline(always)]
    pub fn simd_eq(self, o: Self) -> SimdM<W> {
        let mut m = [false; W];
        for i in 0..W {
            m[i] = self.0[i] == o.0[i];
        }
        SimdM::from_array(m)
    }

    /// Horizontal sum of all lanes (in-register reduction, building block 2).
    ///
    /// The reduction is a pairwise tree (`buf[i] += buf[n-1-i]`, halving):
    /// better rounding behaviour than a straight left-to-right sum. The
    /// intrinsic backends reproduce exactly this association with shuffles,
    /// so the result is bitwise independent of the backend a kernel runs.
    #[inline(always)]
    pub fn horizontal_sum(self) -> T {
        PortableBackend::horizontal_sum(self)
    }

    /// Horizontal sum of the active lanes only.
    #[inline(always)]
    pub fn masked_sum(self, mask: SimdM<W>) -> T {
        self.masked(mask).horizontal_sum()
    }

    /// Horizontal maximum of all lanes.
    #[inline(always)]
    pub fn horizontal_max(self) -> T {
        let mut m = self.0[0];
        for i in 1..W {
            m = m.max(self.0[i]);
        }
        m
    }

    /// Horizontal minimum of all lanes.
    #[inline(always)]
    pub fn horizontal_min(self) -> T {
        let mut m = self.0[0];
        for i in 1..W {
            m = m.min(self.0[i]);
        }
        m
    }

    /// Convert every lane to `f64` (used when a reduced-precision kernel
    /// hands its results to a double-precision accumulator — the mixed
    /// precision mode `Opt-M`).
    #[inline(always)]
    pub fn to_f64_array(self) -> [f64; W] {
        let mut out = [0.0; W];
        for i in 0..W {
            out[i] = self.0[i].to_f64();
        }
        out
    }

    /// Convert a vector of one precision into another lane by lane.
    #[inline(always)]
    pub fn convert<U: Real>(self) -> SimdF<U, W> {
        let mut out = [U::ZERO; W];
        for i in 0..W {
            out[i] = U::from_f64(self.0[i].to_f64());
        }
        SimdF(out)
    }

    /// True if every lane is finite.
    #[inline(always)]
    pub fn all_finite(self) -> bool {
        self.0.iter().all(|x| x.is_finite())
    }
}

impl<T: Real, const W: usize> Default for SimdF<T, W> {
    fn default() -> Self {
        Self::zero()
    }
}

impl<T: Real, const W: usize> Index<usize> for SimdF<T, W> {
    type Output = T;
    #[inline(always)]
    fn index(&self, i: usize) -> &T {
        &self.0[i]
    }
}

impl<T: Real, const W: usize> IndexMut<usize> for SimdF<T, W> {
    #[inline(always)]
    fn index_mut(&mut self, i: usize) -> &mut T {
        &mut self.0[i]
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl<T: Real, const W: usize> $trait for SimdF<T, W> {
            type Output = Self;
            #[inline(always)]
            #[allow(clippy::assign_op_pattern)] // $op is generic over the four operators
            fn $method(self, rhs: Self) -> Self {
                let mut out = self.0;
                for i in 0..W {
                    out[i] = out[i] $op rhs.0[i];
                }
                SimdF(out)
            }
        }
        impl<T: Real, const W: usize> $trait<T> for SimdF<T, W> {
            type Output = Self;
            #[inline(always)]
            #[allow(clippy::assign_op_pattern)]
            fn $method(self, rhs: T) -> Self {
                let mut out = self.0;
                for lane in out.iter_mut() {
                    *lane = *lane $op rhs;
                }
                SimdF(out)
            }
        }
    };
}

impl_binop!(Add, add, +);
impl_binop!(Sub, sub, -);
impl_binop!(Mul, mul, *);
impl_binop!(Div, div, /);

macro_rules! impl_assign {
    ($trait:ident, $method:ident, $op:tt) => {
        impl<T: Real, const W: usize> $trait for SimdF<T, W> {
            #[inline(always)]
            fn $method(&mut self, rhs: Self) {
                for i in 0..W {
                    self.0[i] $op rhs.0[i];
                }
            }
        }
        impl<T: Real, const W: usize> $trait<T> for SimdF<T, W> {
            #[inline(always)]
            fn $method(&mut self, rhs: T) {
                for lane in self.0.iter_mut() {
                    *lane $op rhs;
                }
            }
        }
    };
}

impl_assign!(AddAssign, add_assign, +=);
impl_assign!(SubAssign, sub_assign, -=);
impl_assign!(MulAssign, mul_assign, *=);
impl_assign!(DivAssign, div_assign, /=);

impl<T: Real, const W: usize> Neg for SimdF<T, W> {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        let mut out = self.0;
        for lane in out.iter_mut() {
            *lane = -*lane;
        }
        SimdF(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type V4 = SimdF<f64, 4>;

    #[test]
    fn splat_and_lanes() {
        let v = V4::splat(2.5);
        assert_eq!(v.to_array(), [2.5; 4]);
        assert_eq!(v.lane(3), 2.5);
        let mut v = v;
        v.set_lane(1, -1.0);
        assert_eq!(v.lane(1), -1.0);
    }

    #[test]
    fn arithmetic_is_lanewise() {
        let a = V4::from_array([1.0, 2.0, 3.0, 4.0]);
        let b = V4::from_array([4.0, 3.0, 2.0, 1.0]);
        assert_eq!((a + b).to_array(), [5.0; 4]);
        assert_eq!((a - b).to_array(), [-3.0, -1.0, 1.0, 3.0]);
        assert_eq!((a * b).to_array(), [4.0, 6.0, 6.0, 4.0]);
        assert_eq!((a / b).to_array(), [0.25, 2.0 / 3.0, 1.5, 4.0]);
        assert_eq!((-a).to_array(), [-1.0, -2.0, -3.0, -4.0]);
        assert_eq!((a + 1.0).to_array(), [2.0, 3.0, 4.0, 5.0]);
        assert_eq!((a * 2.0).to_array(), [2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn assign_ops() {
        let mut a = V4::splat(1.0);
        a += V4::splat(2.0);
        a *= 3.0;
        a -= V4::splat(1.0);
        a /= 2.0;
        assert_eq!(a.to_array(), [4.0; 4]);
    }

    #[test]
    fn load_store_roundtrip() {
        let data: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let v = V4::load(&data, 3);
        assert_eq!(v.to_array(), [3.0, 4.0, 5.0, 6.0]);
        let mut out = vec![0.0; 10];
        v.store(&mut out, 2);
        assert_eq!(&out[2..6], &[3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn load_partial_fills_and_masks() {
        let data = [1.0, 2.0];
        let (v, m) = V4::load_partial(&data, 0, 9.0);
        assert_eq!(v.to_array(), [1.0, 2.0, 9.0, 9.0]);
        assert_eq!(m.count(), 2);
        let (v2, m2) = V4::load_partial(&data, 5, 7.0);
        assert_eq!(v2.to_array(), [7.0; 4]);
        assert!(m2.none());
    }

    #[test]
    fn masked_store_leaves_inactive_lanes() {
        let v = V4::splat(5.0);
        let mut out = vec![1.0; 4];
        v.store_masked(&mut out, 0, SimdM::from_array([true, false, true, false]));
        assert_eq!(out, vec![5.0, 1.0, 5.0, 1.0]);
    }

    #[test]
    fn gather_and_masked_gather() {
        let data = [10.0, 20.0, 30.0, 40.0, 50.0];
        let v = V4::gather(&data, &[4, 0, 2, 2]);
        assert_eq!(v.to_array(), [50.0, 10.0, 30.0, 30.0]);
        let m = SimdM::from_array([true, false, true, false]);
        let v = V4::gather_masked(&data, &[1, 999, 3, 999], m, -1.0);
        assert_eq!(v.to_array(), [20.0, -1.0, 40.0, -1.0]);
    }

    #[test]
    fn comparisons_and_select() {
        let a = V4::from_array([1.0, 5.0, 3.0, 0.0]);
        let b = V4::splat(2.5);
        let m = a.simd_lt(b);
        assert_eq!(m.to_array(), [true, false, false, true]);
        assert_eq!(a.simd_ge(b).to_array(), [false, true, true, false]);
        let sel = V4::select(m, V4::splat(1.0), V4::splat(-1.0));
        assert_eq!(sel.to_array(), [1.0, -1.0, -1.0, 1.0]);
        assert_eq!(a.simd_eq(a).count(), 4);
    }

    #[test]
    fn horizontal_reductions() {
        let a = V4::from_array([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.horizontal_sum(), 10.0);
        assert_eq!(a.horizontal_max(), 4.0);
        assert_eq!(a.horizontal_min(), 1.0);
        let m = SimdM::from_array([true, false, true, false]);
        assert_eq!(a.masked_sum(m), 4.0);
    }

    #[test]
    fn horizontal_sum_odd_width() {
        let a = SimdF::<f64, 3>::from_array([1.0, 2.0, 4.0]);
        assert_eq!(a.horizontal_sum(), 7.0);
        let b = SimdF::<f64, 1>::from_array([5.0]);
        assert_eq!(b.horizontal_sum(), 5.0);
    }

    #[test]
    fn fma_matches_scalar() {
        let a = V4::splat(2.0);
        let b = V4::splat(3.0);
        let c = V4::splat(1.0);
        assert_eq!(a.mul_add(b, c).to_array(), [7.0; 4]);
    }

    #[test]
    fn math_helpers() {
        let a = V4::from_array([4.0, 9.0, 16.0, 25.0]);
        assert_eq!(a.sqrt().to_array(), [2.0, 3.0, 4.0, 5.0]);
        assert_eq!(V4::splat(2.0).recip().to_array(), [0.5; 4]);
        assert_eq!(V4::splat(-3.0).abs().to_array(), [3.0; 4]);
        assert_eq!(a.clamp(5.0, 20.0).to_array(), [5.0, 9.0, 16.0, 20.0]);
    }

    #[test]
    fn precision_conversion() {
        let a = SimdF::<f32, 4>::from_array([1.5, 2.5, 3.5, 4.5]);
        let d: SimdF<f64, 4> = a.convert();
        assert_eq!(d.to_array(), [1.5, 2.5, 3.5, 4.5]);
        assert_eq!(a.to_f64_array(), [1.5, 2.5, 3.5, 4.5]);
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut a = V4::splat(1.0);
        assert!(a.all_finite());
        a.set_lane(2, f64::NAN);
        assert!(!a.all_finite());
    }

    #[test]
    fn from_fn_indexes_lanes() {
        let v = V4::from_fn(|i| i as f64 * 2.0);
        assert_eq!(v.to_array(), [0.0, 2.0, 4.0, 6.0]);
    }

    #[test]
    fn width_one_scalar_backend() {
        let a = SimdF::<f64, 1>::splat(3.0);
        let b = SimdF::<f64, 1>::splat(4.0);
        assert_eq!((a * b).horizontal_sum(), 12.0);
        assert!(a.simd_lt(b).all());
    }
}
