//! # vektor — portable vector abstraction for the Tersoff vectorization
//!
//! This crate implements the "building blocks" described in Section V of
//! *The Vectorization of the Tersoff Multi-Body Potential: An Exercise in
//! Performance Portability* (Höhnerbach, Ismail, Bientinesi, SC'16):
//!
//! 1. **Vector-wide conditionals** — [`SimdM::all`], [`SimdM::any`]
//!    allow a kernel to branch only when the condition holds for every lane,
//!    preventing excessive masking.
//! 2. **In-register reductions** — [`SimdF::horizontal_sum`] and the masked
//!    variants reduce a whole vector to a scalar before touching memory.
//! 3. **Conflict-write handling** — [`conflict::scatter_add`] serializes
//!    accumulation when several lanes target the same memory location, the
//!    situation that arises in vectorization scheme (1b) of the paper.
//! 4. **Adjacent-gather** — [`gather::adjacent_gather3`] and friends load
//!    short contiguous runs (positions, per-type parameters) for a vector of
//!    indices, the pattern that dominates parameter lookup in the kernel.
//!
//! The abstraction is *width-oblivious*: algorithms are written once, generic
//! over the element type `T: Real` and the lane count `W`, and the same code
//! instantiates the scalar backend (`W = 1`), short-vector backends
//! (`W = 2, 4` — SSE/AVX-class), long-vector backends (`W = 8, 16` —
//! IMCI/AVX-512-class) and a warp-like backend (`W = 32` — the GPU analog).
//! On stable Rust the lanes are expressed as fixed-size arrays; the per-lane
//! loops are trivially unrollable and auto-vectorizable by LLVM, which plays
//! the role the hand-written intrinsics back-ends play in the paper.

// Lane loops are written as explicit `for i in 0..W { out[i] = ... }` —
// mirroring the SIMD semantics the code models and keeping the pattern LLVM
// recognizes for vectorization — so the iterator-style rewrite clippy
// suggests is deliberately not applied.
#![allow(clippy::needless_range_loop)]

pub mod backend;
pub mod conflict;
pub mod dispatch;
pub mod gather;
pub mod index;
pub mod mask;
pub mod math;
pub mod real;
pub mod reduce;
pub mod simd_backend;
pub mod vector;
#[cfg(target_arch = "x86_64")]
pub(crate) mod x86;

pub use backend::{Backend, BackendKind, IsaClass};
pub use dispatch::BackendImpl;
pub use index::SimdI;
pub use mask::SimdM;
pub use real::Real;
#[cfg(target_arch = "x86_64")]
pub use simd_backend::{Avx2Backend, Avx2Kernel, Avx512Backend, Avx512Kernel};
pub use simd_backend::{PortableBackend, SimdBackend};
pub use vector::SimdF;

/// Commonly used items, for `use vektor::prelude::*`.
pub mod prelude {
    pub use crate::backend::{Backend, BackendKind, IsaClass};
    pub use crate::dispatch::BackendImpl;
    pub use crate::index::SimdI;
    pub use crate::mask::SimdM;
    pub use crate::real::Real;
    pub use crate::simd_backend::{PortableBackend, SimdBackend};
    pub use crate::vector::SimdF;
    pub use crate::{conflict, dispatch, gather, math, reduce};
}

/// A convenience alias used throughout the Tersoff kernels: the mask type
/// that pairs with a real vector of width `W`.
pub type MaskFor<const W: usize> = SimdM<W>;

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn prelude_reexports_compile() {
        let v: SimdF<f64, 4> = SimdF::splat(1.0);
        let m: SimdM<4> = v.simd_gt(SimdF::splat(0.0));
        assert!(m.all());
    }
}
