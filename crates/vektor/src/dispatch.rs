//! Runtime back-end dispatch.
//!
//! The library carries up to three *implementations* of its dispatched
//! operations (gather family, blend/select, fused multiply-add, horizontal
//! reductions, conflict-free scatter):
//!
//! 1. **portable** — the array lane loops (always available, every target);
//! 2. **avx2** — explicit `std::arch` intrinsics for 4 × f64 / 8 × f32
//!    vectors (hardware `vgatherdpd`/`vgatherdps`, `vblendvpd`, `vfmadd`),
//!    used when the CPU reports `avx2` **and** `fma`;
//! 3. **avx512** — 8 × f64 / 16 × f32 via `__m512` registers, `__mmask`
//!    lane masks and hardware scatter, used when the CPU additionally
//!    reports `avx512f`.
//!
//! Selection happens once, lazily, and is cached in an atomic:
//!
//! * the `VEKTOR_BACKEND` environment variable (`portable`, `avx2`,
//!   `avx512`, `auto`) takes precedence — requesting an implementation the
//!   CPU cannot run clamps down to the best supported one;
//! * otherwise the default is build-aware: when the build enables AVX2 at
//!   compile time (so the intrinsics inline), `is_x86_feature_detected!`
//!   picks the widest supported implementation; baseline builds default
//!   to portable, where the per-op `#[target_feature]` call overhead
//!   outweighs the hardware gathers (see [`default_backend`]);
//! * [`set_active`] overrides the cached choice programmatically (the
//!   Tersoff driver resolves its `TersoffOptions::backend` field through
//!   it), again clamped to what the host supports.
//!
//! All implementations are **bit-for-bit equivalent** (enforced by
//! `tests/backend_equivalence.rs`), so switching back-ends — even mid-run —
//! changes execution speed, never results.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

/// The implementation strategy executing vektor's dispatched operations.
///
/// Distinct from [`crate::BackendKind`], which names the ISA class a kernel
/// *models* (its width/precision configuration): `BackendImpl` is the code
/// path that actually runs the lanes on this host.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum BackendImpl {
    /// Portable array lane loops (LLVM auto-vectorization).
    Portable,
    /// Explicit AVX2 + FMA intrinsics (256-bit).
    Avx2,
    /// Explicit AVX-512F intrinsics (512-bit, mask registers, scatter).
    Avx512,
}

impl BackendImpl {
    /// All implementations, narrowest first.
    pub const ALL: [BackendImpl; 3] = [
        BackendImpl::Portable,
        BackendImpl::Avx2,
        BackendImpl::Avx512,
    ];

    /// Stable lower-case name (the value accepted by `VEKTOR_BACKEND`).
    pub fn name(self) -> &'static str {
        match self {
            BackendImpl::Portable => "portable",
            BackendImpl::Avx2 => "avx2",
            BackendImpl::Avx512 => "avx512",
        }
    }

    /// Parse a concrete backend name; `None` for unknown strings. For the
    /// full request grammar including `auto`, see [`parse_request`].
    pub fn parse(s: &str) -> Option<BackendImpl> {
        match s.trim().to_ascii_lowercase().as_str() {
            "portable" | "scalar" | "array" => Some(BackendImpl::Portable),
            "avx2" => Some(BackendImpl::Avx2),
            "avx512" | "avx-512" | "avx512f" => Some(BackendImpl::Avx512),
            _ => None,
        }
    }
}

impl fmt::Display for BackendImpl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Error from `BackendImpl::from_str`: the rejected input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseBackendError(pub String);

impl fmt::Display for ParseBackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown vektor backend {:?} (expected portable, avx2 or avx512)",
            self.0
        )
    }
}

impl std::error::Error for ParseBackendError {}

impl std::str::FromStr for BackendImpl {
    type Err = ParseBackendError;

    /// Strict form of [`BackendImpl::parse`] with a typed error ("auto" is
    /// not a concrete backend — resolve it via [`parse_request`]).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        BackendImpl::parse(s).ok_or_else(|| ParseBackendError(s.to_string()))
    }
}

/// Parse a backend *request*: `Some(None)` means "auto" (detect),
/// `Some(Some(_))` a concrete implementation, `None` an unrecognized string.
#[allow(clippy::option_option)] // request = "auto" | backend; both layers carry meaning
pub fn parse_request(s: &str) -> Option<Option<BackendImpl>> {
    let t = s.trim().to_ascii_lowercase();
    if t.is_empty() || t == "auto" || t == "detect" {
        return Some(None);
    }
    BackendImpl::parse(&t).map(Some)
}

/// Is `backend` runnable on this host?
pub fn supported(backend: BackendImpl) -> bool {
    match backend {
        BackendImpl::Portable => true,
        #[cfg(target_arch = "x86_64")]
        BackendImpl::Avx2 => {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        }
        #[cfg(target_arch = "x86_64")]
        BackendImpl::Avx512 => {
            supported(BackendImpl::Avx2) && std::arch::is_x86_feature_detected!("avx512f")
        }
        #[cfg(not(target_arch = "x86_64"))]
        _ => false,
    }
}

/// The widest implementation this host supports.
pub fn detect_best() -> BackendImpl {
    if supported(BackendImpl::Avx512) {
        BackendImpl::Avx512
    } else if supported(BackendImpl::Avx2) {
        BackendImpl::Avx2
    } else {
        BackendImpl::Portable
    }
}

/// Clamp a request to what the host supports (`avx512` → `avx2` → portable).
pub fn clamp(request: BackendImpl) -> BackendImpl {
    match request {
        BackendImpl::Avx512 if !supported(BackendImpl::Avx512) => clamp(BackendImpl::Avx2),
        BackendImpl::Avx2 if !supported(BackendImpl::Avx2) => BackendImpl::Portable,
        other => other,
    }
}

/// The backend named by `VEKTOR_BACKEND`, if set and recognized. Unknown
/// values are reported once per process on stderr and ignored.
pub fn env_request() -> Option<BackendImpl> {
    static WARN_ONCE: std::sync::Once = std::sync::Once::new();
    let value = std::env::var("VEKTOR_BACKEND").ok()?;
    match parse_request(&value) {
        Some(req) => req,
        None => {
            WARN_ONCE.call_once(|| {
                eprintln!(
                    "vektor: ignoring unrecognized VEKTOR_BACKEND={value:?} \
                     (expected portable, avx2, avx512 or auto)"
                );
            });
            None
        }
    }
}

/// Route one dispatched operation to the active backend. Expands to a
/// *value-producing* match on [`active`] (no early returns, so the macro is
/// safe anywhere an expression is); the intrinsic arms exist only on
/// `x86_64` — every other target calls the portable implementation
/// directly.
macro_rules! route {
    ($method:ident $(::<$($g:ty),*>)? ( $($arg:expr),* $(,)? )) => {{
        #[cfg(target_arch = "x86_64")]
        let routed = match $crate::dispatch::active() {
            $crate::dispatch::BackendImpl::Avx2 => {
                <$crate::simd_backend::Avx2Backend as $crate::simd_backend::SimdBackend>
                    ::$method $(::<$($g),*>)? ($($arg),*)
            }
            $crate::dispatch::BackendImpl::Avx512 => {
                <$crate::simd_backend::Avx512Backend as $crate::simd_backend::SimdBackend>
                    ::$method $(::<$($g),*>)? ($($arg),*)
            }
            $crate::dispatch::BackendImpl::Portable => {
                <$crate::simd_backend::PortableBackend as $crate::simd_backend::SimdBackend>
                    ::$method $(::<$($g),*>)? ($($arg),*)
            }
        };
        #[cfg(not(target_arch = "x86_64"))]
        let routed = <$crate::simd_backend::PortableBackend as $crate::simd_backend::SimdBackend>
            ::$method $(::<$($g),*>)? ($($arg),*);
        routed
    }};
}
pub(crate) use route;

const UNINIT: u8 = u8::MAX;

static ACTIVE: AtomicU8 = AtomicU8::new(UNINIT);

fn to_u8(b: BackendImpl) -> u8 {
    match b {
        BackendImpl::Portable => 0,
        BackendImpl::Avx2 => 1,
        BackendImpl::Avx512 => 2,
    }
}

fn from_u8(v: u8) -> BackendImpl {
    match v {
        1 => BackendImpl::Avx2,
        2 => BackendImpl::Avx512,
        _ => BackendImpl::Portable,
    }
}

/// The default choice: environment override, else build-aware detection.
///
/// The intrinsics live in `#[target_feature]` functions; in a baseline
/// build every dispatched op therefore crosses a non-inlinable call, and
/// measurements (fig5, Opt-M) show that overhead costs more than the
/// hardware gathers save. The auto default engages the intrinsic paths
/// only when the **build itself** enables AVX2 (`-C
/// target-feature=+avx2,+fma` or `-C target-cpu=native`), which lets them
/// inline into the kernels; baseline builds default to portable.
/// `VEKTOR_BACKEND` or a driver-level request can still force any
/// supported implementation in any build.
pub fn default_backend() -> BackendImpl {
    if let Some(request) = env_request() {
        return clamp(request);
    }
    if cfg!(target_feature = "avx2") {
        detect_best()
    } else {
        BackendImpl::Portable
    }
}

#[cold]
fn init_active() -> BackendImpl {
    let b = default_backend();
    ACTIVE.store(to_u8(b), Ordering::Relaxed);
    b
}

/// The implementation the dispatched operations currently execute.
#[inline(always)]
pub fn active() -> BackendImpl {
    let v = ACTIVE.load(Ordering::Relaxed);
    if v == UNINIT {
        init_active()
    } else {
        from_u8(v)
    }
}

/// Force an implementation (clamped to host support); returns the choice
/// that actually took effect. All implementations produce bitwise-identical
/// results, so this is safe to call at any time.
pub fn set_active(backend: BackendImpl) -> BackendImpl {
    let b = clamp(backend);
    ACTIVE.store(to_u8(b), Ordering::Relaxed);
    b
}

/// Resolve a backend request the way the drivers do: `Some(b)` forces `b`
/// (clamped), `None` re-applies the environment/detection default. Returns
/// the implementation now active.
pub fn resolve(request: Option<BackendImpl>) -> BackendImpl {
    match request {
        Some(b) => set_active(b),
        None => set_active(default_backend()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn portable_is_always_supported() {
        assert!(supported(BackendImpl::Portable));
        assert_eq!(clamp(BackendImpl::Portable), BackendImpl::Portable);
    }

    #[test]
    fn detect_best_is_supported_and_resolvable() {
        let best = detect_best();
        assert!(supported(best));
        let forced = set_active(BackendImpl::Portable);
        assert_eq!(forced, BackendImpl::Portable);
        assert_eq!(active(), BackendImpl::Portable);
        // Restore auto for the rest of the process.
        let restored = resolve(None);
        assert_eq!(restored, default_backend());
    }

    #[test]
    fn parse_accepts_aliases_and_rejects_junk() {
        assert_eq!(BackendImpl::parse("AVX2"), Some(BackendImpl::Avx2));
        assert_eq!(BackendImpl::parse("avx-512"), Some(BackendImpl::Avx512));
        assert_eq!(BackendImpl::parse("scalar"), Some(BackendImpl::Portable));
        assert_eq!(BackendImpl::parse("gpu"), None);
        assert_eq!(parse_request("auto"), Some(None));
        assert_eq!(parse_request(""), Some(None));
        assert_eq!(parse_request("portable"), Some(Some(BackendImpl::Portable)));
        assert!(parse_request("nonsense").is_none());
    }

    #[test]
    fn names_round_trip() {
        for b in BackendImpl::ALL {
            assert_eq!(BackendImpl::parse(b.name()), Some(b));
            assert_eq!(format!("{b}"), b.name());
        }
    }

    #[test]
    fn clamp_never_selects_unsupported() {
        for b in BackendImpl::ALL {
            assert!(supported(clamp(b)));
        }
    }
}
