//! Kernel-granularity back-end dispatch.
//!
//! The library carries three kernel *instances* per algorithm:
//!
//! 1. **portable** — the array lane loops at baseline codegen (always
//!    available, every target);
//! 2. **avx2** — the same lane loops monomorphized inside a
//!    `#[target_feature(enable = "avx2,fma")]` entry, where LLVM
//!    auto-vectorizes them with 256-bit registers, `vblendv` and `vfmadd`
//!    ([`crate::Avx2Kernel`]); used when the CPU reports `avx2` **and**
//!    `fma`;
//! 3. **avx512** — 512-bit codegen plus the AVX-512 hardware scatter for
//!    the conflict-free force update ([`crate::Avx512Kernel`]); used when
//!    the CPU additionally reports `avx512f`.
//!
//! Selection happens **once per kernel instance**, not once per operation:
//! a kernel body is written generically over a [`crate::SimdBackend`] type
//! parameter, wrapped in a [`KernelBody`] adapter, and launched through
//! [`run_kernel`], which monomorphizes the whole body into one entry
//! function per implementation. The wide entry functions carry
//! `#[target_feature(enable = ...)]`, so every vektor operation — and the
//! surrounding loop arithmetic — compiles with the wide ISA enabled and
//! **inlines**, regardless of the crate's baseline `-C target-feature`
//! flags. This is what the retired per-op dispatch could not do: a
//! `#[target_feature]` function cannot inline into a baseline caller, so
//! each routed op paid a call (plus mask/lane marshalling) in default
//! builds, and the fast path only ran at speed when the whole crate was
//! compiled with `+avx2`. With the kernel-granularity trampoline, a plain
//! `cargo build --release` runs the wide-ISA path at full speed.
//!
//! The explicit `std::arch` implementations ([`crate::Avx2Backend`],
//! [`crate::Avx512Backend`]) remain as the hand-vectorized reference —
//! selectable directly and bitwise-tested against portable — but the
//! production instances use an intrinsic only where it measures faster
//! than what auto-vectorization produces under the same features (see
//! `tests/perf_probe.rs`; today that is the AVX-512 scatter).
//!
//! There is **no process-global dispatch state**: each kernel instance owns
//! its backend choice (the Tersoff driver stores it per potential), two
//! coexisting kernels can run different implementations, and nothing is
//! resolved behind an atomic. The selection inputs are:
//!
//! * the `VEKTOR_BACKEND` environment variable (`portable`, `avx2`,
//!   `avx512`, `auto`) — consulted by [`default_backend`]; requesting an
//!   implementation the CPU cannot run clamps down to the best supported
//!   one; unknown values warn once and fall through;
//! * otherwise `is_x86_feature_detected!` picks the widest supported
//!   implementation ([`detect_best`]) — in **every** build flavor, since
//!   inlining no longer depends on compile-time features;
//! * a driver-level request (e.g. `TersoffOptions::backend`) overrides the
//!   default per kernel, again clamped to host support.
//!
//! All implementations are **bit-for-bit equivalent** (enforced by
//! `tests/backend_equivalence.rs`), so the backend choice — per kernel or
//! per process — changes execution speed, never results.

#[cfg(target_arch = "x86_64")]
use crate::simd_backend::{Avx2Kernel, Avx512Kernel};
use crate::simd_backend::{PortableBackend, SimdBackend};
use std::fmt;

/// The implementation strategy executing vektor's dispatched operations.
///
/// Distinct from [`crate::BackendKind`], which names the ISA class a kernel
/// *models* (its width/precision configuration): `BackendImpl` is the code
/// path that actually runs the lanes on this host.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum BackendImpl {
    /// Portable array lane loops (LLVM auto-vectorization).
    Portable,
    /// Explicit AVX2 + FMA intrinsics (256-bit).
    Avx2,
    /// Explicit AVX-512F intrinsics (512-bit, mask registers, scatter).
    Avx512,
}

impl BackendImpl {
    /// All implementations, narrowest first.
    pub const ALL: [BackendImpl; 3] = [
        BackendImpl::Portable,
        BackendImpl::Avx2,
        BackendImpl::Avx512,
    ];

    /// Stable lower-case name (the value accepted by `VEKTOR_BACKEND`).
    pub fn name(self) -> &'static str {
        match self {
            BackendImpl::Portable => "portable",
            BackendImpl::Avx2 => "avx2",
            BackendImpl::Avx512 => "avx512",
        }
    }

    /// Parse a concrete backend name; `None` for unknown strings. For the
    /// full request grammar including `auto`, see [`parse_request`].
    pub fn parse(s: &str) -> Option<BackendImpl> {
        match s.trim().to_ascii_lowercase().as_str() {
            "portable" | "scalar" | "array" => Some(BackendImpl::Portable),
            "avx2" => Some(BackendImpl::Avx2),
            "avx512" | "avx-512" | "avx512f" => Some(BackendImpl::Avx512),
            _ => None,
        }
    }
}

impl fmt::Display for BackendImpl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Error from `BackendImpl::from_str`: the rejected input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseBackendError(pub String);

impl fmt::Display for ParseBackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown vektor backend {:?} (expected portable, avx2 or avx512)",
            self.0
        )
    }
}

impl std::error::Error for ParseBackendError {}

impl std::str::FromStr for BackendImpl {
    type Err = ParseBackendError;

    /// Strict form of [`BackendImpl::parse`] with a typed error ("auto" is
    /// not a concrete backend — resolve it via [`parse_request`]).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        BackendImpl::parse(s).ok_or_else(|| ParseBackendError(s.to_string()))
    }
}

/// Parse a backend *request*: `Some(None)` means "auto" (detect),
/// `Some(Some(_))` a concrete implementation, `None` an unrecognized string.
#[allow(clippy::option_option)] // request = "auto" | backend; both layers carry meaning
pub fn parse_request(s: &str) -> Option<Option<BackendImpl>> {
    let t = s.trim().to_ascii_lowercase();
    if t.is_empty() || t == "auto" || t == "detect" {
        return Some(None);
    }
    BackendImpl::parse(&t).map(Some)
}

/// Is `backend` runnable on this host?
pub fn supported(backend: BackendImpl) -> bool {
    match backend {
        BackendImpl::Portable => true,
        #[cfg(target_arch = "x86_64")]
        BackendImpl::Avx2 => {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        }
        #[cfg(target_arch = "x86_64")]
        BackendImpl::Avx512 => {
            supported(BackendImpl::Avx2) && std::arch::is_x86_feature_detected!("avx512f")
        }
        #[cfg(not(target_arch = "x86_64"))]
        _ => false,
    }
}

/// The widest implementation this host supports.
pub fn detect_best() -> BackendImpl {
    if supported(BackendImpl::Avx512) {
        BackendImpl::Avx512
    } else if supported(BackendImpl::Avx2) {
        BackendImpl::Avx2
    } else {
        BackendImpl::Portable
    }
}

/// Clamp a request to what the host supports (`avx512` → `avx2` → portable).
pub fn clamp(request: BackendImpl) -> BackendImpl {
    match request {
        BackendImpl::Avx512 if !supported(BackendImpl::Avx512) => clamp(BackendImpl::Avx2),
        BackendImpl::Avx2 if !supported(BackendImpl::Avx2) => BackendImpl::Portable,
        other => other,
    }
}

/// The backend named by `VEKTOR_BACKEND`, if set and recognized. Unknown
/// values are reported once per process on stderr and ignored.
pub fn env_request() -> Option<BackendImpl> {
    static WARN_ONCE: std::sync::Once = std::sync::Once::new();
    let value = std::env::var("VEKTOR_BACKEND").ok()?;
    match parse_request(&value) {
        Some(req) => req,
        None => {
            WARN_ONCE.call_once(|| {
                eprintln!(
                    "vektor: ignoring unrecognized VEKTOR_BACKEND={value:?} \
                     (expected portable, avx2, avx512 or auto)"
                );
            });
            None
        }
    }
}

/// The default choice for a new kernel instance: environment override, else
/// runtime detection of the widest supported implementation.
///
/// Unlike the retired per-op dispatch, this is **not** build-aware: the
/// kernel trampoline ([`run_kernel`]) compiles each kernel body inside a
/// `#[target_feature]` entry function, so the intrinsics inline in baseline
/// builds too and the wide path is always the fastest supported one.
/// `VEKTOR_BACKEND` or a driver-level request can still force any supported
/// implementation.
pub fn default_backend() -> BackendImpl {
    match env_request() {
        Some(request) => clamp(request),
        None => detect_best(),
    }
}

/// Resolve a driver-level backend request: `Some(b)` forces `b` (clamped to
/// host support), `None` applies the environment/detection default. Pure —
/// no global state is touched; the caller stores the result in its kernel.
pub fn resolve(request: Option<BackendImpl>) -> BackendImpl {
    match request {
        Some(b) => clamp(b),
        None => default_backend(),
    }
}

/// Granularity at which this build of the library binds an ISA: `"kernel"`
/// — one backend choice per kernel instance, monomorphized through
/// [`run_kernel`]. (The previous design dispatched `"op"`-granular through
/// process-global state; benchmark reports record this constant so the two
/// eras stay distinguishable.)
pub const DISPATCH_GRANULARITY: &str = "kernel";

/// The widest vector ISA the **build itself** enables (`-C target-feature`
/// / `-C target-cpu`): `"avx512"`, `"avx2"` or `"baseline"`. Purely
/// informational — with kernel-granularity dispatch the executed backend no
/// longer depends on it — and recorded in benchmark reports next to
/// `executed_backend` so a report always says both what ran and how the
/// binary was compiled.
pub fn compiled_isa() -> &'static str {
    if cfg!(all(target_arch = "x86_64", target_feature = "avx512f")) {
        "avx512"
    } else if cfg!(all(target_arch = "x86_64", target_feature = "avx2")) {
        "avx2"
    } else {
        "baseline"
    }
}

// ---------------------------------------------------------------------------
// The kernel trampoline
// ---------------------------------------------------------------------------

/// A kernel body generic over the SIMD backend — the unit of
/// kernel-granularity dispatch.
///
/// Implementations capture everything the kernel needs (usually a struct of
/// references) and perform the whole computation in [`KernelBody::run`],
/// calling the [`SimdBackend`] associated functions (`B::gather`,
/// `B::select`, `B::masked_sum`, ...) instead of any globally routed API.
///
/// **`run` must be annotated `#[inline(always)]` by the implementor.** The
/// intrinsic entry functions of [`run_kernel`] rely on it: the body inlines
/// into the `#[target_feature(enable = "avx2,fma")]` (or `avx512f`)
/// trampoline and is therefore *compiled with those features enabled*, which
/// is exactly what lets the `std::arch` wrappers — and LLVM's
/// auto-vectorization of the surrounding arithmetic — inline into the kernel
/// loop in a baseline build. Without the annotation the body may stay a
/// separate baseline-feature function and the fast path silently degrades to
/// per-call overhead.
pub trait KernelBody {
    /// What the kernel returns.
    type Output;

    /// Execute the kernel with backend `B`.
    fn run<B: SimdBackend>(self) -> Self::Output;
}

/// Launch a kernel body on the chosen implementation (clamped to host
/// support, so an unsupported request degrades instead of hitting illegal
/// instructions). This is the **only** place where an ISA decision is made:
/// one branch per kernel launch, with the entire body monomorphized per
/// implementation behind it.
#[inline]
pub fn run_kernel<K: KernelBody>(backend: BackendImpl, kernel: K) -> K::Output {
    #[cfg(target_arch = "x86_64")]
    match clamp(backend) {
        // SAFETY: `clamp` verified via `is_x86_feature_detected!` that the
        // host executes avx2+fma / avx512f before selecting these arms.
        BackendImpl::Avx2 => unsafe { run_avx2(kernel) },
        BackendImpl::Avx512 => unsafe { run_avx512(kernel) },
        BackendImpl::Portable => kernel.run::<PortableBackend>(),
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = backend; // every request clamps to portable off x86_64
        kernel.run::<PortableBackend>()
    }
}

/// Generate a kernel's per-ISA trampoline: a dispatching method plus one
/// `#[target_feature]` entry per wide instance, each repeating the
/// kernel's **full parameter list** (so every slice keeps its `noalias`
/// parameter attribute — the generic [`run_kernel`] adapter hides
/// arguments behind an opaque struct and costs LLVM those aliasing facts,
/// measured ~2.7× on the Tersoff loops).
///
/// Invoke inside an inherent `impl` block of a type with a
/// `backend: BackendImpl` field **clamped to host support** (that
/// invariant is the safety argument for the `unsafe` entry calls; clamp
/// in the constructor via [`clamp`] / [`default_backend`]). The kernel
/// body must be a generic `#[inline(always)]` method `fn body<B:
/// SimdBackend>(&self, args...)` — each generated entry monomorphizes it
/// with that entry's instance type, compiling the whole loop under the
/// entry's ISA:
///
/// ```ignore
/// impl MyKernel {
///     vektor::multiversion_entries! {
///         /// Launch `loop_body` on the instance selected at construction.
///         fn loop_dispatch / loop_avx2 / loop_avx512 = loop_body(
///             &self,
///             positions: &[f64],
///             forces: &mut [f64],
///         );
///     }
/// }
/// ```
#[macro_export]
macro_rules! multiversion_entries {
    (
        $(#[$meta:meta])*
        fn $dispatch:ident / $avx2:ident / $avx512:ident = $body:ident (
            &self $(, $arg:ident : $ty:ty)* $(,)?
        );
    ) => {
        $(#[$meta])*
        #[allow(clippy::too_many_arguments)]
        fn $dispatch(&self $(, $arg: $ty)*) {
            match self.backend {
                // SAFETY: the `backend` field is clamped to host support
                // at construction (the macro contract), so the CPU
                // features each entry enables are present.
                #[cfg(target_arch = "x86_64")]
                $crate::BackendImpl::Avx2 => unsafe { self.$avx2($($arg),*) },
                #[cfg(target_arch = "x86_64")]
                $crate::BackendImpl::Avx512 => unsafe { self.$avx512($($arg),*) },
                _ => self.$body::<$crate::PortableBackend>($($arg),*),
            }
        }

        #[cfg(target_arch = "x86_64")]
        #[allow(clippy::too_many_arguments)]
        #[target_feature(enable = "avx2,fma")]
        unsafe fn $avx2(&self $(, $arg: $ty)*) {
            self.$body::<$crate::Avx2Kernel>($($arg),*);
        }

        #[cfg(target_arch = "x86_64")]
        #[allow(clippy::too_many_arguments)]
        #[target_feature(enable = "avx2,fma,avx512f")]
        unsafe fn $avx512(&self $(, $arg: $ty)*) {
            self.$body::<$crate::Avx512Kernel>($($arg),*);
        }
    };
}

/// AVX2+FMA entry: the kernel body inlines here (its `run` is
/// `#[inline(always)]`) and is compiled with 256-bit vectors, `vblendv`
/// and FMA enabled — [`Avx2Kernel`] documents why the instance is the
/// auto-vectorized lane loops rather than the explicit per-op intrinsics.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn run_avx2<K: KernelBody>(kernel: K) -> K::Output {
    kernel.run::<Avx2Kernel>()
}

/// AVX-512F entry: 512-bit registers and mask codegen on top of the
/// AVX2+FMA set, plus [`Avx512Kernel`]'s hardware scatter.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma,avx512f")]
unsafe fn run_avx512<K: KernelBody>(kernel: K) -> K::Output {
    kernel.run::<Avx512Kernel>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::SimdF;

    #[test]
    fn portable_is_always_supported() {
        assert!(supported(BackendImpl::Portable));
        assert_eq!(clamp(BackendImpl::Portable), BackendImpl::Portable);
    }

    #[test]
    fn detect_best_is_supported_and_default_resolves() {
        let best = detect_best();
        assert!(supported(best));
        assert_eq!(resolve(Some(BackendImpl::Portable)), BackendImpl::Portable);
        assert_eq!(resolve(None), default_backend());
        assert!(supported(resolve(Some(BackendImpl::Avx512))));
    }

    #[test]
    fn parse_accepts_aliases_and_rejects_junk() {
        assert_eq!(BackendImpl::parse("AVX2"), Some(BackendImpl::Avx2));
        assert_eq!(BackendImpl::parse("avx-512"), Some(BackendImpl::Avx512));
        assert_eq!(BackendImpl::parse("scalar"), Some(BackendImpl::Portable));
        assert_eq!(BackendImpl::parse("gpu"), None);
        assert_eq!(parse_request("auto"), Some(None));
        assert_eq!(parse_request(""), Some(None));
        assert_eq!(parse_request("portable"), Some(Some(BackendImpl::Portable)));
        assert!(parse_request("nonsense").is_none());
    }

    #[test]
    fn names_round_trip() {
        for b in BackendImpl::ALL {
            assert_eq!(BackendImpl::parse(b.name()), Some(b));
            assert_eq!(format!("{b}"), b.name());
        }
    }

    #[test]
    fn clamp_never_selects_unsupported() {
        for b in BackendImpl::ALL {
            assert!(supported(clamp(b)));
        }
    }

    #[test]
    fn compiled_isa_names_a_known_level() {
        assert!(["baseline", "avx2", "avx512"].contains(&compiled_isa()));
        assert_eq!(DISPATCH_GRANULARITY, "kernel");
    }

    /// A minimal kernel: gather + masked sum, returning the backend name it
    /// actually ran with so the trampoline's monomorphization is observable.
    struct MiniKernel<'a> {
        data: &'a [f64],
        idx: &'a [usize; 4],
    }

    impl KernelBody for MiniKernel<'_> {
        type Output = (f64, &'static str);

        #[inline(always)]
        fn run<B: crate::SimdBackend>(self) -> (f64, &'static str) {
            let v = B::gather(self.data, self.idx);
            (B::horizontal_sum(v), B::name())
        }
    }

    /// A kernel using the `multiversion_entries!` trampoline: sums a slice
    /// through `B::horizontal_sum`, recording which instance ran.
    struct MacroKernel {
        backend: BackendImpl,
    }

    impl MacroKernel {
        #[inline(always)]
        fn body<B: crate::SimdBackend>(&self, data: &[f64], out: &mut (f64, &'static str)) {
            let v: SimdF<f64, 4> = B::load(data, 0);
            *out = (B::horizontal_sum(v), B::name());
        }

        crate::multiversion_entries! {
            /// Dispatching entry generated by the macro.
            fn body_dispatch / body_avx2 / body_avx512 = body(
                &self,
                data: &[f64],
                out: &mut (f64, &'static str),
            );
        }
    }

    #[test]
    fn multiversion_entries_dispatch_on_the_clamped_field() {
        let data = [1.0, 2.0, 4.0, 8.0, 0.0];
        let reference = {
            let mut out = (0.0, "");
            MacroKernel {
                backend: BackendImpl::Portable,
            }
            .body_dispatch(&data, &mut out);
            out
        };
        assert_eq!(reference.1, "portable");
        assert_eq!(reference.0, 15.0);
        for b in BackendImpl::ALL {
            let mut out = (0.0, "");
            MacroKernel { backend: clamp(b) }.body_dispatch(&data, &mut out);
            assert_eq!(out.1, clamp(b).name());
            assert_eq!(out.0.to_bits(), reference.0.to_bits());
        }
    }

    #[test]
    fn run_kernel_monomorphizes_per_backend_with_identical_results() {
        let data: Vec<f64> = (0..32).map(|i| i as f64 * 0.5).collect();
        let idx = [31usize, 0, 7, 7];
        let (reference, name) = run_kernel(
            BackendImpl::Portable,
            MiniKernel {
                data: &data,
                idx: &idx,
            },
        );
        assert_eq!(name, "portable");
        for b in BackendImpl::ALL {
            let (got, name) = run_kernel(
                b,
                MiniKernel {
                    data: &data,
                    idx: &idx,
                },
            );
            // The clamped instance actually ran, and bit-identically.
            assert_eq!(name, clamp(b).name());
            assert_eq!(got.to_bits(), reference.to_bits());
        }
        // Sanity against the plain SimdF path.
        assert_eq!(
            reference.to_bits(),
            SimdF::<f64, 4>::gather(&data, &idx)
                .horizontal_sum()
                .to_bits()
        );
    }
}
