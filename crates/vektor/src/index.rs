//! Integer index vectors.
//!
//! The fused vectorization scheme (1b) and the GPU-style scheme (1c) advance
//! a *different* neighbor-list position in every lane ("fast-forwarding",
//! Sec. IV-C of the paper). [`SimdI`] is the per-lane integer state those
//! schemes manipulate: it supports lane-wise arithmetic, comparisons against
//! per-lane bounds and masked increments.

use crate::mask::SimdM;
use std::ops::{Add, AddAssign, Sub};

/// A vector of `W` lanes of `i64` indices.
///
/// `i64` is wide enough for any atom or neighbor index that occurs in
/// practice, and using a signed type lets `-1` serve as the conventional
/// "no index" sentinel, exactly like the padding value used by the
/// USER-INTEL neighbor-list layout.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
#[repr(align(64))]
pub struct SimdI<const W: usize>(pub [i64; W]);

impl<const W: usize> SimdI<W> {
    /// Sentinel value for an inactive / padded lane.
    pub const INVALID: i64 = -1;

    /// Broadcast one index to all lanes.
    #[inline(always)]
    pub fn splat(x: i64) -> Self {
        SimdI([x; W])
    }

    /// All lanes zero.
    #[inline(always)]
    pub fn zero() -> Self {
        Self::splat(0)
    }

    /// All lanes set to the invalid sentinel.
    #[inline(always)]
    pub fn invalid() -> Self {
        Self::splat(Self::INVALID)
    }

    /// Construct from an array.
    #[inline(always)]
    pub fn from_array(a: [i64; W]) -> Self {
        SimdI(a)
    }

    /// Construct from a `usize` array (e.g. packed pair indices).
    #[inline(always)]
    pub fn from_usize_array(a: [usize; W]) -> Self {
        let mut out = [0i64; W];
        for i in 0..W {
            out[i] = a[i] as i64;
        }
        SimdI(out)
    }

    /// Lane values as an array.
    #[inline(always)]
    pub fn to_array(self) -> [i64; W] {
        self.0
    }

    /// Lane values as `usize`, with inactive (negative) lanes mapped to 0 so
    /// they can be used as *safe-but-ignored* gather indices.
    #[inline(always)]
    pub fn to_usize_clamped(self) -> [usize; W] {
        let mut out = [0usize; W];
        for i in 0..W {
            out[i] = self.0[i].max(0) as usize;
        }
        out
    }

    /// Read one lane.
    #[inline(always)]
    pub fn lane(&self, i: usize) -> i64 {
        self.0[i]
    }

    /// Write one lane.
    #[inline(always)]
    pub fn set_lane(&mut self, i: usize, x: i64) {
        self.0[i] = x;
    }

    /// Build from a function of the lane number.
    #[inline(always)]
    pub fn from_fn(mut f: impl FnMut(usize) -> i64) -> Self {
        let mut out = [0i64; W];
        for (i, lane) in out.iter_mut().enumerate() {
            *lane = f(i);
        }
        SimdI(out)
    }

    /// The lane-number vector `[0, 1, 2, ...]`.
    #[inline(always)]
    pub fn lane_indices() -> Self {
        Self::from_fn(|i| i as i64)
    }

    /// Lane-wise select.
    #[inline(always)]
    pub fn select(mask: SimdM<W>, if_true: Self, if_false: Self) -> Self {
        let mut out = if_false.0;
        for i in 0..W {
            if mask.lane(i) {
                out[i] = if_true.0[i];
            }
        }
        SimdI(out)
    }

    /// Add 1 to the lanes selected by the mask — the "advance this lane"
    /// primitive of the fast-forward loop.
    #[inline(always)]
    pub fn masked_increment(self, mask: SimdM<W>) -> Self {
        let mut out = self.0;
        for i in 0..W {
            if mask.lane(i) {
                out[i] += 1;
            }
        }
        SimdI(out)
    }

    /// Lane-wise `self < o`.
    #[inline(always)]
    pub fn simd_lt(self, o: Self) -> SimdM<W> {
        let mut m = [false; W];
        for i in 0..W {
            m[i] = self.0[i] < o.0[i];
        }
        SimdM::from_array(m)
    }

    /// Lane-wise `self >= o`.
    #[inline(always)]
    pub fn simd_ge(self, o: Self) -> SimdM<W> {
        !self.simd_lt(o)
    }

    /// Lane-wise equality.
    #[inline(always)]
    pub fn simd_eq(self, o: Self) -> SimdM<W> {
        let mut m = [false; W];
        for i in 0..W {
            m[i] = self.0[i] == o.0[i];
        }
        SimdM::from_array(m)
    }

    /// Mask of lanes holding a valid (non-negative) index.
    #[inline(always)]
    pub fn valid_mask(self) -> SimdM<W> {
        let mut m = [false; W];
        for i in 0..W {
            m[i] = self.0[i] >= 0;
        }
        SimdM::from_array(m)
    }

    /// Detect write conflicts: for every lane, is there an *earlier* lane
    /// holding the same index? This mirrors the AVX-512CD `vpconflictd`
    /// use-case discussed in Sec. IV-B / V-A of the paper. Lanes flagged
    /// `true` cannot be scattered blindly and must be serialized.
    #[inline(always)]
    pub fn conflict_mask(self, active: SimdM<W>) -> SimdM<W> {
        let mut m = [false; W];
        for i in 1..W {
            if !active.lane(i) {
                continue;
            }
            for j in 0..i {
                if active.lane(j) && self.0[j] == self.0[i] {
                    m[i] = true;
                    break;
                }
            }
        }
        SimdM::from_array(m)
    }

    /// True if all *active* lanes hold pairwise-distinct indices.
    #[inline(always)]
    pub fn all_distinct(self, active: SimdM<W>) -> bool {
        self.conflict_mask(active).none()
    }

    /// Gather `i64` values from a slice (used for neighbor-list lookups where
    /// the list itself holds integers).
    #[inline(always)]
    pub fn gather(slice: &[i64], idx: &[usize; W]) -> Self {
        let mut out = [0i64; W];
        for i in 0..W {
            out[i] = slice[idx[i]];
        }
        SimdI(out)
    }

    /// Horizontal maximum.
    #[inline(always)]
    pub fn horizontal_max(self) -> i64 {
        let mut m = self.0[0];
        for i in 1..W {
            m = m.max(self.0[i]);
        }
        m
    }

    /// Horizontal minimum.
    #[inline(always)]
    pub fn horizontal_min(self) -> i64 {
        let mut m = self.0[0];
        for i in 1..W {
            m = m.min(self.0[i]);
        }
        m
    }
}

impl<const W: usize> Default for SimdI<W> {
    fn default() -> Self {
        Self::zero()
    }
}

impl<const W: usize> Add for SimdI<W> {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        let mut out = self.0;
        for i in 0..W {
            out[i] += rhs.0[i];
        }
        SimdI(out)
    }
}

impl<const W: usize> Add<i64> for SimdI<W> {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: i64) -> Self {
        let mut out = self.0;
        for lane in out.iter_mut() {
            *lane += rhs;
        }
        SimdI(out)
    }
}

impl<const W: usize> Sub for SimdI<W> {
    type Output = Self;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        let mut out = self.0;
        for i in 0..W {
            out[i] -= rhs.0[i];
        }
        SimdI(out)
    }
}

impl<const W: usize> AddAssign for SimdI<W> {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Self) {
        for i in 0..W {
            self.0[i] += rhs.0[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type I4 = SimdI<4>;

    #[test]
    fn splat_lane_access() {
        let mut v = I4::splat(7);
        assert_eq!(v.to_array(), [7; 4]);
        v.set_lane(2, -1);
        assert_eq!(v.lane(2), -1);
        assert_eq!(v.valid_mask().to_array(), [true, true, false, true]);
    }

    #[test]
    fn lane_indices_and_from_fn() {
        assert_eq!(I4::lane_indices().to_array(), [0, 1, 2, 3]);
        assert_eq!(I4::from_fn(|i| (i * i) as i64).to_array(), [0, 1, 4, 9]);
    }

    #[test]
    fn arithmetic() {
        let a = I4::from_array([1, 2, 3, 4]);
        let b = I4::splat(10);
        assert_eq!((a + b).to_array(), [11, 12, 13, 14]);
        assert_eq!((b - a).to_array(), [9, 8, 7, 6]);
        assert_eq!((a + 1).to_array(), [2, 3, 4, 5]);
        let mut c = a;
        c += a;
        assert_eq!(c.to_array(), [2, 4, 6, 8]);
    }

    #[test]
    fn masked_increment_only_touches_active_lanes() {
        let v = I4::zero();
        let m = SimdM::from_array([true, false, true, false]);
        assert_eq!(v.masked_increment(m).to_array(), [1, 0, 1, 0]);
    }

    #[test]
    fn comparisons() {
        let a = I4::from_array([0, 5, 2, 7]);
        let b = I4::splat(3);
        assert_eq!(a.simd_lt(b).to_array(), [true, false, true, false]);
        assert_eq!(a.simd_ge(b).to_array(), [false, true, false, true]);
        assert_eq!(a.simd_eq(a).count(), 4);
    }

    #[test]
    fn conflict_detection() {
        let idx = I4::from_array([3, 5, 3, 5]);
        let all = SimdM::all_true();
        let conflicts = idx.conflict_mask(all);
        assert_eq!(conflicts.to_array(), [false, false, true, true]);
        assert!(!idx.all_distinct(all));

        // Deactivating the duplicate lanes removes the conflict.
        let m = SimdM::from_array([true, true, false, false]);
        assert!(idx.all_distinct(m));

        let distinct = I4::from_array([0, 1, 2, 3]);
        assert!(distinct.all_distinct(all));
    }

    #[test]
    fn usize_conversions_clamp_invalid() {
        let v = I4::from_array([-1, 0, 5, -1]);
        assert_eq!(v.to_usize_clamped(), [0, 0, 5, 0]);
        assert_eq!(I4::from_usize_array([1, 2, 3, 4]).to_array(), [1, 2, 3, 4]);
    }

    #[test]
    fn gather_and_reductions() {
        let data = [10i64, 20, 30, 40];
        let v = I4::gather(&data, &[3, 2, 1, 0]);
        assert_eq!(v.to_array(), [40, 30, 20, 10]);
        assert_eq!(v.horizontal_max(), 40);
        assert_eq!(v.horizontal_min(), 10);
    }

    #[test]
    fn select_behaves_lanewise() {
        let m = SimdM::from_array([true, false, false, true]);
        let out = I4::select(m, I4::splat(1), I4::splat(9));
        assert_eq!(out.to_array(), [1, 9, 9, 1]);
    }
}
