//! Back-end descriptors.
//!
//! The paper implements one numerical algorithm over a family of
//! vectorization back-ends (Scalar, SSE4.2, AVX, AVX2, IMCI, AVX-512, CUDA) ×
//! precision modes (double, single, mixed). In this reproduction a back-end
//! is a *configuration*: an element type, an accumulator type and a vector
//! width, plus a description of the ISA class whose behaviour it mimics.
//! Kernels are monomorphized over `(T: Real, const W: usize)`; the
//! [`BackendKind`] enum is the run-time name used for dispatch, reporting and
//! the cost model in `arch-model`.

use std::fmt;

/// The class of instruction set a back-end models. The class determines
/// which kernel features are "native" (cheap) versus emulated (costly) —
/// the distinction the paper draws between e.g. AVX (no integer vectors, no
/// gather) and AVX2 (both present).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum IsaClass {
    /// Plain scalar execution (also the per-thread view of a GPU).
    Scalar,
    /// ARM NEON: 128-bit, no double-precision vectors (on the Cortex-A15 of
    /// the paper), no gather.
    Neon,
    /// SSE4.2: 128-bit, integer vectors available, no gather.
    Sse42,
    /// AVX: 256-bit float, **no** usable integer vectors, no gather.
    Avx,
    /// AVX2: 256-bit, integer vectors and hardware gather.
    Avx2,
    /// IMCI (Knights Corner): 512-bit, gather, no conflict detection.
    Imci,
    /// AVX-512 (Knights Landing and later): 512-bit, gather, conflict
    /// detection available.
    Avx512,
    /// A CUDA warp: 32 "lanes", warp votes for vector-wide conditionals.
    CudaWarp,
}

impl IsaClass {
    /// Does this ISA class have a usable hardware gather?
    pub fn has_gather(self) -> bool {
        matches!(
            self,
            IsaClass::Avx2 | IsaClass::Imci | IsaClass::Avx512 | IsaClass::CudaWarp
        )
    }

    /// Does this ISA class have usable integer vector instructions (needed
    /// for the index manipulation of scheme 1b)?
    pub fn has_int_vectors(self) -> bool {
        !matches!(self, IsaClass::Avx | IsaClass::Scalar)
    }

    /// Does this ISA class have conflict-detection instructions?
    pub fn has_conflict_detect(self) -> bool {
        matches!(self, IsaClass::Avx512)
    }

    /// Vector register width in bits (a warp is treated as 32 × 32-bit).
    pub fn register_bits(self) -> usize {
        match self {
            IsaClass::Scalar => 64,
            IsaClass::Neon | IsaClass::Sse42 => 128,
            IsaClass::Avx | IsaClass::Avx2 => 256,
            IsaClass::Imci | IsaClass::Avx512 => 512,
            IsaClass::CudaWarp => 1024,
        }
    }

    /// Number of f64 lanes that fit one register of this class.
    pub fn lanes_f64(self) -> usize {
        (self.register_bits() / 64).max(1)
    }

    /// Number of f32 lanes that fit one register of this class.
    pub fn lanes_f32(self) -> usize {
        (self.register_bits() / 32).max(1)
    }
}

impl fmt::Display for IsaClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IsaClass::Scalar => "Scalar",
            IsaClass::Neon => "NEON",
            IsaClass::Sse42 => "SSE4.2",
            IsaClass::Avx => "AVX",
            IsaClass::Avx2 => "AVX2",
            IsaClass::Imci => "IMCI",
            IsaClass::Avx512 => "AVX-512",
            IsaClass::CudaWarp => "CUDA",
        };
        write!(f, "{s}")
    }
}

/// Floating-point precision mode of a back-end, matching the paper's
/// `Opt-D` / `Opt-S` / `Opt-M` execution modes.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Precision {
    /// All computation and accumulation in f64 (`Opt-D`, and the `Ref` code).
    Double,
    /// All computation and accumulation in f32 (`Opt-S`).
    Single,
    /// Computation in f32, accumulation in f64 (`Opt-M`).
    Mixed,
}

impl Precision {
    /// Bits of the compute element type.
    pub fn compute_bits(self) -> usize {
        match self {
            Precision::Double => 64,
            Precision::Single | Precision::Mixed => 32,
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Precision::Double => "double",
            Precision::Single => "single",
            Precision::Mixed => "mixed",
        };
        write!(f, "{s}")
    }
}

/// A fully specified vector back-end: ISA class + precision, from which the
/// lane count follows.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct BackendKind {
    /// The instruction-set class being modelled.
    pub isa: IsaClass,
    /// The precision mode.
    pub precision: Precision,
}

impl BackendKind {
    /// Construct a back-end kind.
    pub const fn new(isa: IsaClass, precision: Precision) -> Self {
        BackendKind { isa, precision }
    }

    /// The number of lanes this back-end processes per vector.
    pub fn width(self) -> usize {
        match self.precision {
            Precision::Double => self.isa.lanes_f64(),
            Precision::Single | Precision::Mixed => self.isa.lanes_f32(),
        }
    }

    /// Every back-end kind the library supports, in the order the paper's
    /// evaluation walks through them.
    pub fn all() -> Vec<BackendKind> {
        use IsaClass::*;
        use Precision::*;
        let mut v = Vec::new();
        for isa in [Scalar, Neon, Sse42, Avx, Avx2, Imci, Avx512, CudaWarp] {
            for p in [Double, Single, Mixed] {
                // NEON on the Cortex-A15 has no double-precision vectors, and
                // the paper's ARM Opt-D is the optimized *scalar* code; the
                // mixed mode was not implemented there either. Model that by
                // excluding those combinations.
                if isa == Neon && p != Single {
                    continue;
                }
                v.push(BackendKind::new(isa, p));
            }
        }
        v
    }

    /// Short label like `AVX2/single`.
    pub fn label(self) -> String {
        format!("{}/{}", self.isa, self.precision)
    }

    /// Label extended with the implementation that actually executes the
    /// vector operations, e.g. `AVX2/mixed@avx2`. The part before `@` is
    /// the *modeled* ISA class (width/precision configuration); the part
    /// after is the executing [`crate::dispatch::BackendImpl`] — with
    /// kernel-granularity dispatch that choice lives in each kernel
    /// instance, so the caller passes it in (e.g. a kernel's
    /// `backend()` accessor or [`crate::dispatch::default_backend`]).
    pub fn executed_label(self, executed: crate::dispatch::BackendImpl) -> String {
        format!("{}@{}", self.label(), executed.name())
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Marker trait implemented by zero-sized back-end tags. It exists so that
/// code *outside* the kernels (drivers, benchmarks) can talk about a back-end
/// abstractly; the kernels themselves take `(T: Real, const W: usize)`
/// because stable Rust cannot use an associated const as a const-generic
/// argument.
pub trait Backend {
    /// Compute element type.
    type Elem: crate::real::Real;
    /// Accumulator element type (differs from `Elem` only for mixed
    /// precision).
    type Acc: crate::real::Real;
    /// Lane count.
    const WIDTH: usize;
    /// Descriptor of this back-end.
    const KIND: BackendKind;

    /// Human-readable name.
    fn name() -> String {
        Self::KIND.label()
    }
}

/// Scalar double-precision back-end (the reference configuration).
pub struct ScalarD;
impl Backend for ScalarD {
    type Elem = f64;
    type Acc = f64;
    const WIDTH: usize = 1;
    const KIND: BackendKind = BackendKind::new(IsaClass::Scalar, Precision::Double);
}

/// SSE4.2-class single precision: 4 lanes of f32.
pub struct Sse42S;
impl Backend for Sse42S {
    type Elem = f32;
    type Acc = f32;
    const WIDTH: usize = 4;
    const KIND: BackendKind = BackendKind::new(IsaClass::Sse42, Precision::Single);
}

/// AVX-class double precision: 4 lanes of f64.
pub struct AvxD;
impl Backend for AvxD {
    type Elem = f64;
    type Acc = f64;
    const WIDTH: usize = 4;
    const KIND: BackendKind = BackendKind::new(IsaClass::Avx, Precision::Double);
}

/// AVX2-class single precision: 8 lanes of f32.
pub struct Avx2S;
impl Backend for Avx2S {
    type Elem = f32;
    type Acc = f32;
    const WIDTH: usize = 8;
    const KIND: BackendKind = BackendKind::new(IsaClass::Avx2, Precision::Single);
}

/// AVX2-class mixed precision: 8 lanes of f32 compute, f64 accumulation.
pub struct Avx2M;
impl Backend for Avx2M {
    type Elem = f32;
    type Acc = f64;
    const WIDTH: usize = 8;
    const KIND: BackendKind = BackendKind::new(IsaClass::Avx2, Precision::Mixed);
}

/// AVX-512-class double precision: 8 lanes of f64.
pub struct Avx512D;
impl Backend for Avx512D {
    type Elem = f64;
    type Acc = f64;
    const WIDTH: usize = 8;
    const KIND: BackendKind = BackendKind::new(IsaClass::Avx512, Precision::Double);
}

/// AVX-512-class single precision: 16 lanes of f32.
pub struct Avx512S;
impl Backend for Avx512S {
    type Elem = f32;
    type Acc = f32;
    const WIDTH: usize = 16;
    const KIND: BackendKind = BackendKind::new(IsaClass::Avx512, Precision::Single);
}

/// AVX-512-class mixed precision: 16 lanes of f32 compute, f64 accumulation.
pub struct Avx512M;
impl Backend for Avx512M {
    type Elem = f32;
    type Acc = f64;
    const WIDTH: usize = 16;
    const KIND: BackendKind = BackendKind::new(IsaClass::Avx512, Precision::Mixed);
}

/// Warp-like back-end: 32 lanes of f32 (the GPU analog, scheme 1c).
pub struct WarpS;
impl Backend for WarpS {
    type Elem = f32;
    type Acc = f32;
    const WIDTH: usize = 32;
    const KIND: BackendKind = BackendKind::new(IsaClass::CudaWarp, Precision::Single);
}

/// Warp-like back-end in double precision (the paper's Opt-KK-D runs the
/// GPU kernel in double precision).
pub struct WarpD;
impl Backend for WarpD {
    type Elem = f64;
    type Acc = f64;
    const WIDTH: usize = 32;
    const KIND: BackendKind = BackendKind::new(IsaClass::CudaWarp, Precision::Double);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isa_feature_matrix_matches_paper() {
        assert!(
            !IsaClass::Avx.has_int_vectors(),
            "AVX lacks integer vectors (Sec. VI-A)"
        );
        assert!(IsaClass::Avx2.has_int_vectors());
        assert!(IsaClass::Avx2.has_gather());
        assert!(!IsaClass::Sse42.has_gather());
        assert!(IsaClass::Sse42.has_int_vectors());
        assert!(IsaClass::Avx512.has_conflict_detect());
        assert!(!IsaClass::Imci.has_conflict_detect());
    }

    #[test]
    fn lane_counts_follow_register_width() {
        assert_eq!(IsaClass::Sse42.lanes_f64(), 2);
        assert_eq!(IsaClass::Sse42.lanes_f32(), 4);
        assert_eq!(IsaClass::Avx.lanes_f64(), 4);
        assert_eq!(IsaClass::Avx2.lanes_f32(), 8);
        assert_eq!(IsaClass::Avx512.lanes_f64(), 8);
        assert_eq!(IsaClass::Avx512.lanes_f32(), 16);
        assert_eq!(IsaClass::CudaWarp.lanes_f32(), 32);
        assert_eq!(IsaClass::Scalar.lanes_f64(), 1);
    }

    #[test]
    fn backend_kind_width_respects_precision() {
        let d = BackendKind::new(IsaClass::Avx512, Precision::Double);
        let s = BackendKind::new(IsaClass::Avx512, Precision::Single);
        let m = BackendKind::new(IsaClass::Avx512, Precision::Mixed);
        assert_eq!(d.width(), 8);
        assert_eq!(s.width(), 16);
        assert_eq!(m.width(), 16);
    }

    #[test]
    fn all_kinds_excludes_unsupported_neon_modes() {
        let all = BackendKind::all();
        assert!(all
            .iter()
            .any(|k| k.isa == IsaClass::Neon && k.precision == Precision::Single));
        assert!(!all
            .iter()
            .any(|k| k.isa == IsaClass::Neon && k.precision == Precision::Double));
        assert!(!all.is_empty());
    }

    #[test]
    fn backend_tags_are_consistent() {
        assert_eq!(AvxD::WIDTH, AvxD::KIND.width());
        assert_eq!(Avx512S::WIDTH, Avx512S::KIND.width());
        assert_eq!(Avx2M::WIDTH, Avx2M::KIND.width());
        assert_eq!(WarpS::WIDTH, 32);
        assert_eq!(ScalarD::name(), "Scalar/double");
    }

    #[test]
    fn labels_and_display() {
        assert_eq!(
            BackendKind::new(IsaClass::Avx2, Precision::Mixed).label(),
            "AVX2/mixed"
        );
        assert_eq!(format!("{}", IsaClass::Imci), "IMCI");
        assert_eq!(format!("{}", Precision::Single), "single");
    }
}
