//! Conflict-write handling (building block 3).
//!
//! In vectorization scheme (1b) the lanes of one vector hold *different*
//! central atoms i, so nothing guarantees that force updates from different
//! lanes target distinct atoms — the classic scatter conflict. The paper
//! resolves this by serializing the accumulation (the semantics of OpenMP's
//! `ordered simd`), noting that AVX-512CD conflict detection could avoid the
//! serialization in the future. This module provides both:
//!
//! * [`scatter_add`] / [`scatter_add3`] — unconditionally serialized, always
//!   correct.
//! * [`scatter_add3_conflict_detect`] — the CD-style variant: lanes with
//!   distinct targets are written "in parallel" (a single pass), conflicting
//!   lanes are folded into their first occurrence beforehand, mirroring what
//!   a `vpconflictd`-based loop does in hardware.
//!
//! Both have identical results; property tests in `tests/` assert this.

use crate::index::SimdI;
use crate::mask::SimdM;
use crate::real::Real;
use crate::vector::SimdF;

/// Serialized scatter-accumulate of one value per lane: for every active
/// lane, `target[idx[lane]] += value[lane]`, in lane order.
#[inline(always)]
pub fn scatter_add<T: Real, const W: usize>(
    target: &mut [T],
    idx: &[usize; W],
    mask: SimdM<W>,
    values: SimdF<T, W>,
) {
    for lane in 0..W {
        if mask.lane(lane) {
            target[idx[lane]] += values.lane(lane);
        }
    }
}

/// Serialized scatter-accumulate of a 3-component record per lane into an
/// AoS buffer with the given stride: the per-atom force update of scheme 1b.
#[inline(always)]
pub fn scatter_add3<T: Real, const W: usize, const STRIDE: usize>(
    target: &mut [T],
    idx: &[usize; W],
    mask: SimdM<W>,
    values: [SimdF<T, W>; 3],
) {
    for lane in 0..W {
        if mask.lane(lane) {
            let base = idx[lane] * STRIDE;
            target[base] += values[0].lane(lane);
            target[base + 1] += values[1].lane(lane);
            target[base + 2] += values[2].lane(lane);
        }
    }
}

/// Conflict-detecting scatter-accumulate (the AVX-512CD analogue).
///
/// Conflicting lanes are first combined *in register* into the earliest lane
/// holding each target index; afterwards each surviving lane performs exactly
/// one read-modify-write. The result is bitwise identical to [`scatter_add3`]
/// when the addition order per target matches lane order, which it does
/// because combination proceeds in increasing lane order.
#[inline(always)]
pub fn scatter_add3_conflict_detect<T: Real, const W: usize, const STRIDE: usize>(
    target: &mut [T],
    idx_vec: SimdI<W>,
    mask: SimdM<W>,
    values: [SimdF<T, W>; 3],
) {
    let conflicts = idx_vec.conflict_mask(mask);
    let mut combined = values;
    let mut write_mask = mask;
    let idx = idx_vec.to_array();

    // Fold each conflicting lane into the first lane with the same target.
    for lane in 0..W {
        if conflicts.lane(lane) {
            // Find the representative (first active lane with same index).
            let mut rep = lane;
            for j in 0..lane {
                if mask.lane(j) && idx[j] == idx[lane] {
                    rep = j;
                    break;
                }
            }
            for c in 0..3 {
                let sum = combined[c].lane(rep) + combined[c].lane(lane);
                combined[c].set_lane(rep, sum);
            }
            write_mask.set_lane(lane, false);
        }
    }

    // Now all active lanes are distinct: one pass, no ordering constraints.
    for lane in 0..W {
        if write_mask.lane(lane) {
            let base = (idx[lane].max(0) as usize) * STRIDE;
            target[base] += combined[0].lane(lane);
            target[base + 1] += combined[1].lane(lane);
            target[base + 2] += combined[2].lane(lane);
        }
    }
}

/// In-register reduction into a *uniform* location (building block 2 applied
/// to writes): when every active lane accumulates to the same memory cell,
/// reduce first and perform one scalar update.
#[inline(always)]
pub fn reduce_add_uniform<T: Real, const W: usize>(
    target: &mut T,
    mask: SimdM<W>,
    values: SimdF<T, W>,
) {
    *target += values.masked_sum(mask);
}

/// Same as [`reduce_add_uniform`] for a 3-component record (e.g. the force on
/// the fixed atom `i` while a vector of neighbors `j` is processed in
/// scheme 1a).
#[inline(always)]
pub fn reduce_add3_uniform<T: Real, const W: usize>(
    target: &mut [T; 3],
    mask: SimdM<W>,
    values: [SimdF<T, W>; 3],
) {
    target[0] += values[0].masked_sum(mask);
    target[1] += values[1].masked_sum(mask);
    target[2] += values[2].masked_sum(mask);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_add_accumulates_conflicting_lanes() {
        let mut t = vec![0.0f64; 4];
        let idx = [1usize, 1, 1, 3];
        scatter_add::<f64, 4>(
            &mut t,
            &idx,
            SimdM::all_true(),
            SimdF::from_array([1.0, 2.0, 4.0, 8.0]),
        );
        assert_eq!(t, vec![0.0, 7.0, 0.0, 8.0]);
    }

    #[test]
    fn scatter_add_respects_mask() {
        let mut t = vec![0.0f64; 2];
        let idx = [0usize, 0, 1, 1];
        let m = SimdM::from_array([true, false, false, true]);
        scatter_add::<f64, 4>(&mut t, &idx, m, SimdF::splat(2.0));
        assert_eq!(t, vec![2.0, 2.0]);
    }

    #[test]
    fn scatter_add3_matches_manual_accumulation() {
        let mut t = vec![0.0f64; 9];
        let idx = [2usize, 0, 2, 1];
        let vals = [
            SimdF::from_array([1.0, 2.0, 3.0, 4.0]),
            SimdF::from_array([0.1, 0.2, 0.3, 0.4]),
            SimdF::from_array([10.0, 20.0, 30.0, 40.0]),
        ];
        scatter_add3::<f64, 4, 3>(&mut t, &idx, SimdM::all_true(), vals);
        assert_eq!(t[6], 4.0); // atom 2 x: 1 + 3
        assert_eq!(t[0], 2.0); // atom 0 x
        assert_eq!(t[3], 4.0); // atom 1 x
        assert!((t[7] - 0.4).abs() < 1e-12); // atom 2 y: 0.1 + 0.3
        assert_eq!(t[8], 40.0); // atom 2 z: 10 + 30
    }

    #[test]
    fn conflict_detect_equals_serialized() {
        let idx_arr = [2i64, 0, 2, 2];
        let idx = SimdI::from_array(idx_arr);
        let mask = SimdM::all_true();
        let vals = [
            SimdF::from_array([1.0, 2.0, 3.0, 4.0]),
            SimdF::from_array([5.0, 6.0, 7.0, 8.0]),
            SimdF::from_array([9.0, 10.0, 11.0, 12.0]),
        ];

        let mut serial = vec![0.0f64; 9];
        let idx_usize = [2usize, 0, 2, 2];
        scatter_add3::<f64, 4, 3>(&mut serial, &idx_usize, mask, vals);

        let mut cd = vec![0.0f64; 9];
        scatter_add3_conflict_detect::<f64, 4, 3>(&mut cd, idx, mask, vals);

        for (a, b) in serial.iter().zip(cd.iter()) {
            assert!((a - b).abs() < 1e-12, "serial={a} cd={b}");
        }
    }

    #[test]
    fn conflict_detect_ignores_inactive_conflicts() {
        let idx = SimdI::from_array([0, 0, 1, 1]);
        let mask = SimdM::from_array([true, false, true, false]);
        let vals = [SimdF::splat(1.0), SimdF::splat(2.0), SimdF::splat(3.0)];
        let mut t = vec![0.0f64; 6];
        scatter_add3_conflict_detect::<f64, 4, 3>(&mut t, idx, mask, vals);
        assert_eq!(t, vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn uniform_reductions() {
        let mut x = 1.0f64;
        reduce_add_uniform::<f64, 4>(
            &mut x,
            SimdM::all_true(),
            SimdF::from_array([1.0, 2.0, 3.0, 4.0]),
        );
        assert_eq!(x, 11.0);

        let mut f = [0.0f64; 3];
        reduce_add3_uniform::<f64, 4>(
            &mut f,
            SimdM::from_array([true, true, false, false]),
            [
                SimdF::from_array([1.0, 1.0, 100.0, 100.0]),
                SimdF::from_array([2.0, 2.0, 100.0, 100.0]),
                SimdF::from_array([3.0, 3.0, 100.0, 100.0]),
            ],
        );
        assert_eq!(f, [2.0, 4.0, 6.0]);
    }
}
