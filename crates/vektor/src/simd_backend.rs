//! The [`SimdBackend`] trait: one implementation surface for the dispatched
//! vector operations, with the portable array code as the universal default
//! and explicit `std::arch` back-ends overriding the lane configurations
//! their ISA accelerates.
//!
//! The trait deliberately mirrors the paper's "building blocks": contiguous
//! load/store, (masked) gather, fused blend/select, fused multiply-add,
//! in-register horizontal reduction, adjacent gather, and the conflict-free
//! scatter of scheme (1a). Kernels never name a *concrete* backend — they
//! are written generically over a `B: SimdBackend` type parameter and
//! launched through the [`crate::dispatch::run_kernel`] trampoline, which
//! monomorphizes the whole kernel body per implementation inside a
//! `#[target_feature]` entry function. Because every override is
//! bit-for-bit equal to the portable default, the choice of backend is
//! invisible to physics.
//!
//! Lane configurations with hardware coverage:
//!
//! | backend | f64              | f32               |
//! |---------|------------------|-------------------|
//! | avx2    | `W` divisible by 4 | `W` divisible by 8  |
//! | avx512  | `W` divisible by 8 | `W` divisible by 16 |
//!
//! AVX-512 falls back to the AVX2 chunking for the narrower multiples, and
//! both fall back to the portable default for everything else (`W = 1, 2`,
//! odd widths). The lane loops in the defaults are exactly the pre-backend
//! portable implementation, so a host without the features — or a build for
//! another architecture — behaves precisely as before.

use crate::dispatch::BackendImpl;
use crate::mask::SimdM;
use crate::real::Real;
use crate::vector::SimdF;
use std::any::TypeId;

/// A backend implementing the dispatched vector operations.
///
/// All methods are associated functions (backends are stateless tags); the
/// defaults are the portable array implementation. Implementations carrying
/// `std::arch` code may only be *invoked* when the matching CPU features
/// are present — [`crate::dispatch::run_kernel`] guarantees this for
/// trampolined kernels (it clamps the request to host support), and tests
/// gate direct calls on [`crate::dispatch::supported`].
pub trait SimdBackend {
    /// The dispatch tag of this backend.
    const KIND: BackendImpl;

    /// Stable human-readable name.
    fn name() -> &'static str {
        Self::KIND.name()
    }

    /// Contiguous load of `W` elements starting at `slice[offset]`.
    #[inline(always)]
    fn load<T: Real, const W: usize>(slice: &[T], offset: usize) -> SimdF<T, W> {
        let mut out = [T::ZERO; W];
        out.copy_from_slice(&slice[offset..offset + W]);
        SimdF(out)
    }

    /// Contiguous store of all lanes into `slice[offset..offset + W]`.
    #[inline(always)]
    fn store<T: Real, const W: usize>(v: SimdF<T, W>, slice: &mut [T], offset: usize) {
        slice[offset..offset + W].copy_from_slice(&v.0);
    }

    /// Store only the lanes whose mask bit is set.
    #[inline(always)]
    fn store_masked<T: Real, const W: usize>(
        v: SimdF<T, W>,
        slice: &mut [T],
        offset: usize,
        mask: SimdM<W>,
    ) {
        for i in 0..W {
            if mask.lane(i) {
                slice[offset + i] = v.0[i];
            }
        }
    }

    /// Gather `slice[idx[lane]]` into each lane; all indices must be in
    /// bounds.
    #[inline(always)]
    fn gather<T: Real, const W: usize>(slice: &[T], idx: &[usize; W]) -> SimdF<T, W> {
        let mut out = [T::ZERO; W];
        for i in 0..W {
            out[i] = slice[idx[i]];
        }
        SimdF(out)
    }

    /// Masked gather: inactive lanes receive `fill`; their indices are not
    /// dereferenced.
    #[inline(always)]
    fn gather_masked<T: Real, const W: usize>(
        slice: &[T],
        idx: &[usize; W],
        mask: SimdM<W>,
        fill: T,
    ) -> SimdF<T, W> {
        let mut out = [fill; W];
        for i in 0..W {
            if mask.lane(i) {
                out[i] = slice[idx[i]];
            }
        }
        SimdF(out)
    }

    /// Fused blend: `mask ? if_true : if_false` per lane.
    #[inline(always)]
    fn select<T: Real, const W: usize>(
        mask: SimdM<W>,
        if_true: SimdF<T, W>,
        if_false: SimdF<T, W>,
    ) -> SimdF<T, W> {
        let mut out = if_false.0;
        for i in 0..W {
            if mask.lane(i) {
                out[i] = if_true.0[i];
            }
        }
        SimdF(out)
    }

    /// Zero the lanes where the mask is not set (derived from [`select`],
    /// so every backend's blend hardware is reused).
    ///
    /// [`select`]: SimdBackend::select
    #[inline(always)]
    fn masked<T: Real, const W: usize>(v: SimdF<T, W>, mask: SimdM<W>) -> SimdF<T, W> {
        Self::select(mask, v, SimdF::zero())
    }

    /// Horizontal sum of the active lanes only (mask, then the pairwise
    /// in-register reduction).
    #[inline(always)]
    fn masked_sum<T: Real, const W: usize>(v: SimdF<T, W>, mask: SimdM<W>) -> T {
        Self::horizontal_sum(Self::masked(v, mask))
    }

    /// Fused multiply-add `a * b + c` per lane (always fused — both the
    /// portable and intrinsic paths round once).
    #[inline(always)]
    fn mul_add<T: Real, const W: usize>(
        a: SimdF<T, W>,
        b: SimdF<T, W>,
        c: SimdF<T, W>,
    ) -> SimdF<T, W> {
        let mut out = [T::ZERO; W];
        for i in 0..W {
            out[i] = a.0[i].mul_add(b.0[i], c.0[i]);
        }
        SimdF(out)
    }

    /// In-register horizontal sum with the pairwise association
    /// `buf[i] += buf[n-1-i]`, halving until one lane remains.
    #[inline(always)]
    fn horizontal_sum<T: Real, const W: usize>(v: SimdF<T, W>) -> T {
        let mut buf = v.0;
        let mut n = W;
        while n > 1 {
            let half = n / 2;
            for i in 0..half {
                buf[i] += buf[n - 1 - i];
            }
            n = n.div_ceil(2);
        }
        buf[0]
    }

    /// Adjacent gather of three consecutive fields per lane from an AoS
    /// buffer (`buffer[idx[lane] * STRIDE + component]`); inactive lanes
    /// yield zero.
    #[inline(always)]
    fn adjacent_gather3<T: Real, const W: usize, const STRIDE: usize>(
        buffer: &[T],
        idx: &[usize; W],
        mask: SimdM<W>,
    ) -> [SimdF<T, W>; 3] {
        let mut x = [T::ZERO; W];
        let mut y = [T::ZERO; W];
        let mut z = [T::ZERO; W];
        for lane in 0..W {
            if mask.lane(lane) {
                let base = idx[lane] * STRIDE;
                x[lane] = buffer[base];
                y[lane] = buffer[base + 1];
                z[lane] = buffer[base + 2];
            }
        }
        [SimdF(x), SimdF(y), SimdF(z)]
    }

    /// Adjacent gather of `N` consecutive fields per lane
    /// (`buffer[idx[lane] * N + field]`).
    #[inline(always)]
    fn adjacent_gather_n<T: Real, const W: usize, const N: usize>(
        buffer: &[T],
        idx: &[usize; W],
        mask: SimdM<W>,
    ) -> [SimdF<T, W>; N] {
        let mut out = [[T::ZERO; W]; N];
        for lane in 0..W {
            if mask.lane(lane) {
                let base = idx[lane] * N;
                for field in 0..N {
                    out[field][lane] = buffer[base + field];
                }
            }
        }
        out.map(SimdF)
    }

    /// Conflict-free scatter-accumulate of a 3-component record per lane,
    /// assuming active lanes target pairwise-distinct records (scheme 1a's
    /// j-force update).
    #[inline(always)]
    fn scatter_add3_distinct<T: Real, const W: usize, const STRIDE: usize>(
        buffer: &mut [T],
        idx: &[usize; W],
        mask: SimdM<W>,
        values: [SimdF<T, W>; 3],
    ) {
        for lane in 0..W {
            if mask.lane(lane) {
                let base = idx[lane] * STRIDE;
                buffer[base] += values[0].lane(lane);
                buffer[base + 1] += values[1].lane(lane);
                buffer[base + 2] += values[2].lane(lane);
            }
        }
    }
}

/// The portable array backend — the trait defaults, available everywhere.
pub struct PortableBackend;

impl SimdBackend for PortableBackend {
    const KIND: BackendImpl = BackendImpl::Portable;
}

// ---------------------------------------------------------------------------
// x86_64 specializations
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod spec {
    use super::*;
    use crate::x86;

    #[inline(always)]
    fn is<T: 'static, U: 'static>() -> bool {
        TypeId::of::<T>() == TypeId::of::<U>()
    }

    /// Reinterpret a slice whose element type was proven by `TypeId`.
    #[inline(always)]
    fn cast_slice<T: Real, U: Real>(s: &[T]) -> &[U] {
        debug_assert!(is::<T, U>());
        // SAFETY: T == U (TypeId-checked by every caller).
        unsafe { &*(s as *const [T] as *const [U]) }
    }

    #[inline(always)]
    fn cast_slice_mut<T: Real, U: Real>(s: &mut [T]) -> &mut [U] {
        debug_assert!(is::<T, U>());
        // SAFETY: T == U (TypeId-checked by every caller).
        unsafe { &mut *(s as *mut [T] as *mut [U]) }
    }

    /// Reinterpret a lane array whose element type was proven by `TypeId`.
    #[inline(always)]
    fn cast_lanes<U: Real, T: Real, const W: usize>(a: [T; W]) -> [U; W] {
        debug_assert!(is::<T, U>());
        // SAFETY: T == U, same layout.
        unsafe { core::ptr::read(&a as *const [T; W] as *const [U; W]) }
    }

    #[inline(always)]
    fn sub<const N: usize, X: Copy>(a: &[X], start: usize) -> [X; N] {
        a[start..start + N].try_into().expect("chunk in range")
    }

    /// Every index usable by a hardware gather/scatter: in bounds and
    /// representable as a non-negative `i32` offset. Checked in **release**
    /// builds too: the routed entry points are safe APIs whose portable
    /// path panics deterministically on a bad index, and falling back to it
    /// (by returning `None`/`false` from the spec wrappers) preserves that
    /// behaviour instead of handing the index to an intrinsic (UB) or
    /// truncating it to 32 bits (silently wrong element). The check is a
    /// handful of compares against the multi-cycle latency of the gather
    /// itself.
    #[inline(always)]
    fn hw_idx_ok<const W: usize>(len: usize, idx: &[usize; W]) -> bool {
        idx.iter().all(|&i| i < len && i <= i32::MAX as usize)
    }

    /// [`hw_idx_ok`] over the active lanes only (inactive indices are never
    /// dereferenced and their offsets are zeroed before reaching the
    /// instruction).
    #[inline(always)]
    fn hw_idx_ok_masked<const W: usize>(len: usize, idx: &[usize; W], m: &[bool; W]) -> bool {
        (0..W).all(|lane| !m[lane] || (idx[lane] < len && idx[lane] <= i32::MAX as usize))
    }

    macro_rules! chunked {
        // Pure producers: build a full-width output from per-chunk calls.
        ($T:ty, $W:expr, $N:expr, $out:ident, $body:expr) => {{
            let mut $out = [<$T>::ZERO; $W];
            for c in 0..$W / $N {
                let lo = c * $N;
                #[allow(clippy::redundant_closure_call)]
                let r: [$T; $N] = $body(lo);
                $out[lo..lo + $N].copy_from_slice(&r);
            }
            $out
        }};
    }

    // -- AVX2 -------------------------------------------------------------

    pub fn avx2_gather<T: Real, const W: usize>(
        slice: &[T],
        idx: &[usize; W],
    ) -> Option<SimdF<T, W>> {
        if !hw_idx_ok(slice.len(), idx) {
            return None; // portable fallback keeps the panic-on-OOB contract
        }
        if is::<T, f64>() && W.is_multiple_of(4) && W >= 4 {
            let src = cast_slice::<T, f64>(slice);
            let out = chunked!(f64, W, 4, out, |lo| unsafe {
                x86::gather_f64x4(src, &sub::<4, _>(idx, lo))
            });
            Some(SimdF(cast_lanes::<T, f64, W>(out)))
        } else if is::<T, f32>() && W.is_multiple_of(8) && W >= 8 {
            let src = cast_slice::<T, f32>(slice);
            let out = chunked!(f32, W, 8, out, |lo| unsafe {
                x86::gather_f32x8(src, &sub::<8, _>(idx, lo))
            });
            Some(SimdF(cast_lanes::<T, f32, W>(out)))
        } else {
            None
        }
    }

    pub fn avx2_gather_masked<T: Real, const W: usize>(
        slice: &[T],
        idx: &[usize; W],
        mask: SimdM<W>,
        fill: T,
    ) -> Option<SimdF<T, W>> {
        let m = mask.to_array();
        if !hw_idx_ok_masked(slice.len(), idx, &m) {
            return None; // portable fallback keeps the panic-on-OOB contract
        }
        if is::<T, f64>() && W.is_multiple_of(4) && W >= 4 {
            let src = cast_slice::<T, f64>(slice);
            let fill = fill.to_f64();
            let out = chunked!(f64, W, 4, out, |lo| unsafe {
                x86::gather_masked_f64x4(src, &sub::<4, _>(idx, lo), &sub::<4, _>(&m, lo), fill)
            });
            Some(SimdF(cast_lanes::<T, f64, W>(out)))
        } else if is::<T, f32>() && W.is_multiple_of(8) && W >= 8 {
            let src = cast_slice::<T, f32>(slice);
            let fill = fill.to_f64() as f32;
            let out = chunked!(f32, W, 8, out, |lo| unsafe {
                x86::gather_masked_f32x8(src, &sub::<8, _>(idx, lo), &sub::<8, _>(&m, lo), fill)
            });
            Some(SimdF(cast_lanes::<T, f32, W>(out)))
        } else {
            None
        }
    }

    pub fn avx2_select<T: Real, const W: usize>(
        mask: SimdM<W>,
        t: SimdF<T, W>,
        f: SimdF<T, W>,
    ) -> Option<SimdF<T, W>> {
        let m = mask.to_array();
        if is::<T, f64>() && W.is_multiple_of(4) && W >= 4 {
            let tv = cast_lanes::<f64, T, W>(t.0);
            let fv = cast_lanes::<f64, T, W>(f.0);
            let out = chunked!(f64, W, 4, out, |lo| unsafe {
                x86::select_f64x4(
                    &sub::<4, _>(&m, lo),
                    &sub::<4, _>(&tv, lo),
                    &sub::<4, _>(&fv, lo),
                )
            });
            Some(SimdF(cast_lanes::<T, f64, W>(out)))
        } else if is::<T, f32>() && W.is_multiple_of(8) && W >= 8 {
            let tv = cast_lanes::<f32, T, W>(t.0);
            let fv = cast_lanes::<f32, T, W>(f.0);
            let out = chunked!(f32, W, 8, out, |lo| unsafe {
                x86::select_f32x8(
                    &sub::<8, _>(&m, lo),
                    &sub::<8, _>(&tv, lo),
                    &sub::<8, _>(&fv, lo),
                )
            });
            Some(SimdF(cast_lanes::<T, f32, W>(out)))
        } else {
            None
        }
    }

    pub fn avx2_store_masked<T: Real, const W: usize>(
        v: SimdF<T, W>,
        slice: &mut [T],
        offset: usize,
        mask: SimdM<W>,
    ) -> bool {
        let m = mask.to_array();
        if is::<T, f64>() && W.is_multiple_of(4) && W >= 4 && offset + W <= slice.len() {
            let dst = cast_slice_mut::<T, f64>(slice);
            let vv = cast_lanes::<f64, T, W>(v.0);
            for c in 0..W / 4 {
                let lo = c * 4;
                // SAFETY: avx2+fma verified by dispatch; range checked above.
                unsafe {
                    x86::store_masked_f64x4(
                        dst,
                        offset + lo,
                        &sub::<4, _>(&m, lo),
                        &sub::<4, _>(&vv, lo),
                    );
                }
            }
            true
        } else if is::<T, f32>() && W.is_multiple_of(8) && W >= 8 && offset + W <= slice.len() {
            let dst = cast_slice_mut::<T, f32>(slice);
            let vv = cast_lanes::<f32, T, W>(v.0);
            for c in 0..W / 8 {
                let lo = c * 8;
                // SAFETY: as above.
                unsafe {
                    x86::store_masked_f32x8(
                        dst,
                        offset + lo,
                        &sub::<8, _>(&m, lo),
                        &sub::<8, _>(&vv, lo),
                    );
                }
            }
            true
        } else {
            false
        }
    }

    pub fn avx2_mul_add<T: Real, const W: usize>(
        a: SimdF<T, W>,
        b: SimdF<T, W>,
        c: SimdF<T, W>,
    ) -> Option<SimdF<T, W>> {
        if is::<T, f64>() && W.is_multiple_of(4) && W >= 4 {
            let (av, bv, cv) = (
                cast_lanes::<f64, T, W>(a.0),
                cast_lanes::<f64, T, W>(b.0),
                cast_lanes::<f64, T, W>(c.0),
            );
            let out = chunked!(f64, W, 4, out, |lo| unsafe {
                x86::mul_add_f64x4(
                    &sub::<4, _>(&av, lo),
                    &sub::<4, _>(&bv, lo),
                    &sub::<4, _>(&cv, lo),
                )
            });
            Some(SimdF(cast_lanes::<T, f64, W>(out)))
        } else if is::<T, f32>() && W.is_multiple_of(8) && W >= 8 {
            let (av, bv, cv) = (
                cast_lanes::<f32, T, W>(a.0),
                cast_lanes::<f32, T, W>(b.0),
                cast_lanes::<f32, T, W>(c.0),
            );
            let out = chunked!(f32, W, 8, out, |lo| unsafe {
                x86::mul_add_f32x8(
                    &sub::<8, _>(&av, lo),
                    &sub::<8, _>(&bv, lo),
                    &sub::<8, _>(&cv, lo),
                )
            });
            Some(SimdF(cast_lanes::<T, f32, W>(out)))
        } else {
            None
        }
    }

    /// Only exact native widths: the multi-chunk pairwise association does
    /// not decompose into independent per-chunk reductions.
    pub fn avx2_horizontal_sum<T: Real, const W: usize>(v: SimdF<T, W>) -> Option<T> {
        if is::<T, f64>() && W == 4 {
            let vv = cast_lanes::<f64, T, W>(v.0);
            let s = unsafe { x86::hsum_f64x4(&sub::<4, _>(&vv, 0)) };
            Some(T::from_f64(s))
        } else if is::<T, f32>() && W == 8 {
            let vv = cast_lanes::<f32, T, W>(v.0);
            let s = unsafe { x86::hsum_f32x8(&sub::<8, _>(&vv, 0)) };
            // f32 -> T where T == f32: exact.
            Some(T::from_f64(s as f64))
        } else {
            None
        }
    }

    // -- AVX-512 ----------------------------------------------------------

    pub fn avx512_gather<T: Real, const W: usize>(
        slice: &[T],
        idx: &[usize; W],
    ) -> Option<SimdF<T, W>> {
        if !hw_idx_ok(slice.len(), idx) {
            return None; // portable fallback keeps the panic-on-OOB contract
        }
        if is::<T, f64>() && W.is_multiple_of(8) && W >= 8 {
            let src = cast_slice::<T, f64>(slice);
            let out = chunked!(f64, W, 8, out, |lo| unsafe {
                x86::gather_f64x8(src, &sub::<8, _>(idx, lo))
            });
            Some(SimdF(cast_lanes::<T, f64, W>(out)))
        } else if is::<T, f32>() && W.is_multiple_of(16) && W >= 16 {
            let src = cast_slice::<T, f32>(slice);
            let out = chunked!(f32, W, 16, out, |lo| unsafe {
                x86::gather_f32x16(src, &sub::<16, _>(idx, lo))
            });
            Some(SimdF(cast_lanes::<T, f32, W>(out)))
        } else {
            None
        }
    }

    pub fn avx512_gather_masked<T: Real, const W: usize>(
        slice: &[T],
        idx: &[usize; W],
        mask: SimdM<W>,
        fill: T,
    ) -> Option<SimdF<T, W>> {
        let m = mask.to_array();
        if !hw_idx_ok_masked(slice.len(), idx, &m) {
            return None; // portable fallback keeps the panic-on-OOB contract
        }
        if is::<T, f64>() && W.is_multiple_of(8) && W >= 8 {
            let src = cast_slice::<T, f64>(slice);
            let fill = fill.to_f64();
            let out = chunked!(f64, W, 8, out, |lo| unsafe {
                x86::gather_masked_f64x8(src, &sub::<8, _>(idx, lo), &sub::<8, _>(&m, lo), fill)
            });
            Some(SimdF(cast_lanes::<T, f64, W>(out)))
        } else if is::<T, f32>() && W.is_multiple_of(16) && W >= 16 {
            let src = cast_slice::<T, f32>(slice);
            let fill = fill.to_f64() as f32;
            let out = chunked!(f32, W, 16, out, |lo| unsafe {
                x86::gather_masked_f32x16(src, &sub::<16, _>(idx, lo), &sub::<16, _>(&m, lo), fill)
            });
            Some(SimdF(cast_lanes::<T, f32, W>(out)))
        } else {
            None
        }
    }

    pub fn avx512_select<T: Real, const W: usize>(
        mask: SimdM<W>,
        t: SimdF<T, W>,
        f: SimdF<T, W>,
    ) -> Option<SimdF<T, W>> {
        let m = mask.to_array();
        if is::<T, f64>() && W.is_multiple_of(8) && W >= 8 {
            let tv = cast_lanes::<f64, T, W>(t.0);
            let fv = cast_lanes::<f64, T, W>(f.0);
            let out = chunked!(f64, W, 8, out, |lo| unsafe {
                x86::select_f64x8(
                    &sub::<8, _>(&m, lo),
                    &sub::<8, _>(&tv, lo),
                    &sub::<8, _>(&fv, lo),
                )
            });
            Some(SimdF(cast_lanes::<T, f64, W>(out)))
        } else if is::<T, f32>() && W.is_multiple_of(16) && W >= 16 {
            let tv = cast_lanes::<f32, T, W>(t.0);
            let fv = cast_lanes::<f32, T, W>(f.0);
            let out = chunked!(f32, W, 16, out, |lo| unsafe {
                x86::select_f32x16(
                    &sub::<16, _>(&m, lo),
                    &sub::<16, _>(&tv, lo),
                    &sub::<16, _>(&fv, lo),
                )
            });
            Some(SimdF(cast_lanes::<T, f32, W>(out)))
        } else {
            None
        }
    }

    pub fn avx512_mul_add<T: Real, const W: usize>(
        a: SimdF<T, W>,
        b: SimdF<T, W>,
        c: SimdF<T, W>,
    ) -> Option<SimdF<T, W>> {
        if is::<T, f64>() && W.is_multiple_of(8) && W >= 8 {
            let (av, bv, cv) = (
                cast_lanes::<f64, T, W>(a.0),
                cast_lanes::<f64, T, W>(b.0),
                cast_lanes::<f64, T, W>(c.0),
            );
            let out = chunked!(f64, W, 8, out, |lo| unsafe {
                x86::mul_add_f64x8(
                    &sub::<8, _>(&av, lo),
                    &sub::<8, _>(&bv, lo),
                    &sub::<8, _>(&cv, lo),
                )
            });
            Some(SimdF(cast_lanes::<T, f64, W>(out)))
        } else if is::<T, f32>() && W.is_multiple_of(16) && W >= 16 {
            let (av, bv, cv) = (
                cast_lanes::<f32, T, W>(a.0),
                cast_lanes::<f32, T, W>(b.0),
                cast_lanes::<f32, T, W>(c.0),
            );
            let out = chunked!(f32, W, 16, out, |lo| unsafe {
                x86::mul_add_f32x16(
                    &sub::<16, _>(&av, lo),
                    &sub::<16, _>(&bv, lo),
                    &sub::<16, _>(&cv, lo),
                )
            });
            Some(SimdF(cast_lanes::<T, f32, W>(out)))
        } else {
            None
        }
    }

    pub fn avx512_horizontal_sum<T: Real, const W: usize>(v: SimdF<T, W>) -> Option<T> {
        if is::<T, f64>() && W == 8 {
            let vv = cast_lanes::<f64, T, W>(v.0);
            let s = unsafe { x86::hsum_f64x8(&sub::<8, _>(&vv, 0)) };
            Some(T::from_f64(s))
        } else if is::<T, f32>() && W == 16 {
            let vv = cast_lanes::<f32, T, W>(v.0);
            let s = unsafe { x86::hsum_f32x16(&sub::<16, _>(&vv, 0)) };
            Some(T::from_f64(s as f64))
        } else {
            None
        }
    }

    /// Hardware scatter path for the conflict-free 3-component scatter-add.
    /// Per component the scaled indices `idx * STRIDE + d` are scattered in
    /// one chunked RMW pass; distinct targets make the lane order
    /// irrelevant.
    pub fn avx512_scatter_add3_distinct<T: Real, const W: usize, const STRIDE: usize>(
        buffer: &mut [T],
        idx: &[usize; W],
        mask: SimdM<W>,
        values: [SimdF<T, W>; 3],
    ) -> bool {
        let m = mask.to_array();
        let mut scaled = [0usize; W];
        for lane in 0..W {
            if m[lane] {
                scaled[lane] = idx[lane] * STRIDE;
            }
        }
        // Validate the highest component offset (scaled + 2) for the active
        // lanes, so every per-component scatter below is in bounds and
        // i32-representable; otherwise fall back to the (panicking) portable
        // path.
        let highest_ok = (0..W).all(|lane| {
            !m[lane] || (scaled[lane] + 2 < buffer.len() && scaled[lane] + 2 <= i32::MAX as usize)
        });
        if !highest_ok {
            return false;
        }
        if is::<T, f64>() && W.is_multiple_of(8) && W >= 8 {
            let dst = cast_slice_mut::<T, f64>(buffer);
            for (d, v) in values.iter().enumerate() {
                let vv = cast_lanes::<f64, T, W>(v.0);
                let mut comp = scaled;
                for (lane, c) in comp.iter_mut().enumerate() {
                    if m[lane] {
                        *c += d;
                    }
                }
                for c in 0..W / 8 {
                    let lo = c * 8;
                    // SAFETY: avx512f verified by dispatch; active indices
                    // in bounds per the scatter contract.
                    unsafe {
                        x86::scatter_add_f64x8(
                            dst,
                            &sub::<8, _>(&comp, lo),
                            &sub::<8, _>(&m, lo),
                            &sub::<8, _>(&vv, lo),
                        );
                    }
                }
            }
            true
        } else if is::<T, f32>() && W.is_multiple_of(16) && W >= 16 {
            let dst = cast_slice_mut::<T, f32>(buffer);
            for (d, v) in values.iter().enumerate() {
                let vv = cast_lanes::<f32, T, W>(v.0);
                let mut comp = scaled;
                for (lane, c) in comp.iter_mut().enumerate() {
                    if m[lane] {
                        *c += d;
                    }
                }
                for c in 0..W / 16 {
                    let lo = c * 16;
                    // SAFETY: as above.
                    unsafe {
                        x86::scatter_add_f32x16(
                            dst,
                            &sub::<16, _>(&comp, lo),
                            &sub::<16, _>(&m, lo),
                            &sub::<16, _>(&vv, lo),
                        );
                    }
                }
            }
            true
        } else {
            false
        }
    }
}

/// Adjacent-gather via hardware gathers: one masked gather per component
/// over scaled indices (`idx * STRIDE + component`). Shared by the AVX2 and
/// AVX-512 backends, which differ only through the routed `gather_masked`.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn adjacent_gather3_via<B: SimdBackend, T: Real, const W: usize, const STRIDE: usize>(
    buffer: &[T],
    idx: &[usize; W],
    mask: SimdM<W>,
) -> [SimdF<T, W>; 3] {
    let mut scaled = [0usize; W];
    for lane in 0..W {
        if mask.lane(lane) {
            scaled[lane] = idx[lane] * STRIDE;
        }
    }
    let x = B::gather_masked(buffer, &scaled, mask, T::ZERO);
    for (lane, s) in scaled.iter_mut().enumerate() {
        if mask.lane(lane) {
            *s += 1;
        }
    }
    let y = B::gather_masked(buffer, &scaled, mask, T::ZERO);
    for (lane, s) in scaled.iter_mut().enumerate() {
        if mask.lane(lane) {
            *s += 1;
        }
    }
    let z = B::gather_masked(buffer, &scaled, mask, T::ZERO);
    [x, y, z]
}

#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn adjacent_gather_n_via<B: SimdBackend, T: Real, const W: usize, const N: usize>(
    buffer: &[T],
    idx: &[usize; W],
    mask: SimdM<W>,
) -> [SimdF<T, W>; N] {
    let mut scaled = [0usize; W];
    for lane in 0..W {
        if mask.lane(lane) {
            scaled[lane] = idx[lane] * N;
        }
    }
    let mut out = [SimdF::zero(); N];
    for (field, slot) in out.iter_mut().enumerate() {
        if field > 0 {
            for (lane, s) in scaled.iter_mut().enumerate() {
                if mask.lane(lane) {
                    *s += 1;
                }
            }
        }
        *slot = B::gather_masked(buffer, &scaled, mask, T::ZERO);
    }
    out
}

/// The AVX2 + FMA backend: 256-bit `std::arch` intrinsics for `f64` lane
/// counts divisible by 4 and `f32` lane counts divisible by 8; portable
/// fallback for everything else.
///
/// Invoke only when `avx2` and `fma` are detected
/// ([`crate::dispatch::supported`]) — the [`crate::dispatch::run_kernel`]
/// trampoline guarantees this.
#[cfg(target_arch = "x86_64")]
pub struct Avx2Backend;

#[cfg(target_arch = "x86_64")]
impl SimdBackend for Avx2Backend {
    const KIND: BackendImpl = BackendImpl::Avx2;

    #[inline(always)]
    fn gather<T: Real, const W: usize>(slice: &[T], idx: &[usize; W]) -> SimdF<T, W> {
        spec::avx2_gather(slice, idx).unwrap_or_else(|| PortableBackend::gather(slice, idx))
    }

    #[inline(always)]
    fn gather_masked<T: Real, const W: usize>(
        slice: &[T],
        idx: &[usize; W],
        mask: SimdM<W>,
        fill: T,
    ) -> SimdF<T, W> {
        spec::avx2_gather_masked(slice, idx, mask, fill)
            .unwrap_or_else(|| PortableBackend::gather_masked(slice, idx, mask, fill))
    }

    #[inline(always)]
    fn select<T: Real, const W: usize>(
        mask: SimdM<W>,
        if_true: SimdF<T, W>,
        if_false: SimdF<T, W>,
    ) -> SimdF<T, W> {
        spec::avx2_select(mask, if_true, if_false)
            .unwrap_or_else(|| PortableBackend::select(mask, if_true, if_false))
    }

    #[inline(always)]
    fn store_masked<T: Real, const W: usize>(
        v: SimdF<T, W>,
        slice: &mut [T],
        offset: usize,
        mask: SimdM<W>,
    ) {
        if !spec::avx2_store_masked(v, slice, offset, mask) {
            PortableBackend::store_masked(v, slice, offset, mask);
        }
    }

    #[inline(always)]
    fn mul_add<T: Real, const W: usize>(
        a: SimdF<T, W>,
        b: SimdF<T, W>,
        c: SimdF<T, W>,
    ) -> SimdF<T, W> {
        spec::avx2_mul_add(a, b, c).unwrap_or_else(|| PortableBackend::mul_add(a, b, c))
    }

    #[inline(always)]
    fn horizontal_sum<T: Real, const W: usize>(v: SimdF<T, W>) -> T {
        spec::avx2_horizontal_sum(v).unwrap_or_else(|| PortableBackend::horizontal_sum(v))
    }

    #[inline(always)]
    fn adjacent_gather3<T: Real, const W: usize, const STRIDE: usize>(
        buffer: &[T],
        idx: &[usize; W],
        mask: SimdM<W>,
    ) -> [SimdF<T, W>; 3] {
        adjacent_gather3_via::<Self, T, W, STRIDE>(buffer, idx, mask)
    }

    #[inline(always)]
    fn adjacent_gather_n<T: Real, const W: usize, const N: usize>(
        buffer: &[T],
        idx: &[usize; W],
        mask: SimdM<W>,
    ) -> [SimdF<T, W>; N] {
        adjacent_gather_n_via::<Self, T, W, N>(buffer, idx, mask)
    }
}

/// The AVX-512F backend: 512-bit registers, `__mmask` lane masks and
/// hardware scatter for `f64` lane counts divisible by 8 and `f32` lane
/// counts divisible by 16; AVX2 chunking for the narrower multiples;
/// portable fallback otherwise.
///
/// Invoke only when `avx512f` (plus `avx2`/`fma`) is detected.
#[cfg(target_arch = "x86_64")]
pub struct Avx512Backend;

#[cfg(target_arch = "x86_64")]
impl SimdBackend for Avx512Backend {
    const KIND: BackendImpl = BackendImpl::Avx512;

    #[inline(always)]
    fn gather<T: Real, const W: usize>(slice: &[T], idx: &[usize; W]) -> SimdF<T, W> {
        spec::avx512_gather(slice, idx).unwrap_or_else(|| Avx2Backend::gather(slice, idx))
    }

    #[inline(always)]
    fn gather_masked<T: Real, const W: usize>(
        slice: &[T],
        idx: &[usize; W],
        mask: SimdM<W>,
        fill: T,
    ) -> SimdF<T, W> {
        spec::avx512_gather_masked(slice, idx, mask, fill)
            .unwrap_or_else(|| Avx2Backend::gather_masked(slice, idx, mask, fill))
    }

    #[inline(always)]
    fn select<T: Real, const W: usize>(
        mask: SimdM<W>,
        if_true: SimdF<T, W>,
        if_false: SimdF<T, W>,
    ) -> SimdF<T, W> {
        spec::avx512_select(mask, if_true, if_false)
            .unwrap_or_else(|| Avx2Backend::select(mask, if_true, if_false))
    }

    #[inline(always)]
    fn store_masked<T: Real, const W: usize>(
        v: SimdF<T, W>,
        slice: &mut [T],
        offset: usize,
        mask: SimdM<W>,
    ) {
        Avx2Backend::store_masked(v, slice, offset, mask);
    }

    #[inline(always)]
    fn mul_add<T: Real, const W: usize>(
        a: SimdF<T, W>,
        b: SimdF<T, W>,
        c: SimdF<T, W>,
    ) -> SimdF<T, W> {
        spec::avx512_mul_add(a, b, c).unwrap_or_else(|| Avx2Backend::mul_add(a, b, c))
    }

    #[inline(always)]
    fn horizontal_sum<T: Real, const W: usize>(v: SimdF<T, W>) -> T {
        spec::avx512_horizontal_sum(v).unwrap_or_else(|| Avx2Backend::horizontal_sum(v))
    }

    #[inline(always)]
    fn adjacent_gather3<T: Real, const W: usize, const STRIDE: usize>(
        buffer: &[T],
        idx: &[usize; W],
        mask: SimdM<W>,
    ) -> [SimdF<T, W>; 3] {
        adjacent_gather3_via::<Self, T, W, STRIDE>(buffer, idx, mask)
    }

    #[inline(always)]
    fn adjacent_gather_n<T: Real, const W: usize, const N: usize>(
        buffer: &[T],
        idx: &[usize; W],
        mask: SimdM<W>,
    ) -> [SimdF<T, W>; N] {
        adjacent_gather_n_via::<Self, T, W, N>(buffer, idx, mask)
    }

    #[inline(always)]
    fn scatter_add3_distinct<T: Real, const W: usize, const STRIDE: usize>(
        buffer: &mut [T],
        idx: &[usize; W],
        mask: SimdM<W>,
        values: [SimdF<T, W>; 3],
    ) {
        if !spec::avx512_scatter_add3_distinct::<T, W, STRIDE>(buffer, idx, mask, values) {
            PortableBackend::scatter_add3_distinct::<T, W, STRIDE>(buffer, idx, mask, values);
        }
    }
}

// ---------------------------------------------------------------------------
// The kernel-instance tags the dispatch trampoline launches
// ---------------------------------------------------------------------------

/// The AVX2+FMA **kernel instance**: the implementation
/// [`crate::dispatch::run_kernel`] monomorphizes inside its
/// `#[target_feature(enable = "avx2,fma")]` entry.
///
/// Every op is the portable lane loop — deliberately. Compiled inside the
/// feature envelope, LLVM auto-vectorizes those loops with 256-bit
/// registers, `vblendv` and `vfmadd` directly on the kernel's live values;
/// the explicit [`Avx2Backend`] wrappers have to marshal `SimdM` bool
/// arrays and lane arrays into `__m256` per call, which measures ~3×
/// slower for the blend/FMA mix and ~14× slower for the gather patterns
/// (`tests/perf_probe.rs`, both sides compiled under identical features).
/// The hand-written intrinsics remain available as [`Avx2Backend`] /
/// [`Avx512Backend`] — the paper-faithful explicit building blocks, still
/// bitwise-tested — but the production instances use them only where they
/// win.
#[cfg(target_arch = "x86_64")]
pub struct Avx2Kernel;

#[cfg(target_arch = "x86_64")]
impl SimdBackend for Avx2Kernel {
    const KIND: BackendImpl = BackendImpl::Avx2;
}

/// The AVX-512F **kernel instance** (see [`Avx2Kernel`] for the design):
/// portable lane loops auto-vectorized to 512-bit inside the
/// `#[target_feature(enable = "avx2,fma,avx512f")]` entry, plus the one
/// explicit intrinsic that beats auto-vectorization — the hardware
/// scatter of the conflict-free scheme-(1a) force update (measured ~1.5×
/// faster than the scalar read-modify-write loop under the same
/// features).
#[cfg(target_arch = "x86_64")]
pub struct Avx512Kernel;

#[cfg(target_arch = "x86_64")]
impl SimdBackend for Avx512Kernel {
    const KIND: BackendImpl = BackendImpl::Avx512;

    #[inline(always)]
    fn scatter_add3_distinct<T: Real, const W: usize, const STRIDE: usize>(
        buffer: &mut [T],
        idx: &[usize; W],
        mask: SimdM<W>,
        values: [SimdF<T, W>; 3],
    ) {
        Avx512Backend::scatter_add3_distinct::<T, W, STRIDE>(buffer, idx, mask, values);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn portable_backend_reports_kind() {
        assert_eq!(PortableBackend::KIND, BackendImpl::Portable);
        assert_eq!(PortableBackend::name(), "portable");
    }

    #[test]
    fn portable_defaults_match_legacy_behaviour() {
        let data: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let v: SimdF<f64, 4> = PortableBackend::load(&data, 2);
        assert_eq!(v.to_array(), [2.0, 3.0, 4.0, 5.0]);
        let g: SimdF<f64, 4> = PortableBackend::gather(&data, &[11, 0, 5, 5]);
        assert_eq!(g.to_array(), [11.0, 0.0, 5.0, 5.0]);
        assert_eq!(PortableBackend::horizontal_sum(g), 21.0);
        let s = PortableBackend::select(
            SimdM::from_array([true, false, true, false]),
            SimdF::<f64, 4>::splat(1.0),
            SimdF::splat(-1.0),
        );
        assert_eq!(s.to_array(), [1.0, -1.0, 1.0, -1.0]);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn intrinsic_backends_report_kinds() {
        assert_eq!(Avx2Backend::KIND, BackendImpl::Avx2);
        assert_eq!(Avx512Backend::KIND, BackendImpl::Avx512);
        assert_eq!(Avx2Backend::name(), "avx2");
    }
}
