//! Scalar floating-point abstraction.
//!
//! The paper's vector library is instantiated for single, double and mixed
//! precision. The [`Real`] trait is the scalar element type of a vector lane;
//! it is implemented for `f32` and `f64`. Mixed precision (the paper's
//! `Opt-M`) pairs an `f32` compute type with an `f64` accumulator type, and
//! is expressed in kernels as two independent `Real` parameters.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A scalar floating-point type usable as a vector lane element.
///
/// The operation set is exactly what the Tersoff kernels need: basic
/// arithmetic, `sqrt`, `exp`, trigonometric functions for the cutoff and
/// angular terms, `powf` for the bond-order term, and fused multiply-add.
pub trait Real:
    Copy
    + Clone
    + PartialOrd
    + PartialEq
    + Debug
    + Display
    + Default
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// One half.
    const HALF: Self;
    /// Two.
    const TWO: Self;
    /// Machine epsilon of the type.
    const EPSILON: Self;
    /// π in this precision.
    const PI: Self;
    /// Number of significant decimal digits (used to pick test tolerances).
    const DIGITS: u32;

    /// Convert from `f64`, rounding to the nearest representable value.
    fn from_f64(x: f64) -> Self;
    /// Convert to `f64` exactly (both supported types embed into `f64`).
    fn to_f64(self) -> f64;
    /// Convert from `usize` (lossy for huge values, which never occur here).
    fn from_usize(x: usize) -> Self {
        Self::from_f64(x as f64)
    }

    /// Square root.
    fn sqrt(self) -> Self;
    /// Natural exponential.
    fn exp(self) -> Self;
    /// Natural logarithm.
    fn ln(self) -> Self;
    /// Sine.
    fn sin(self) -> Self;
    /// Cosine.
    fn cos(self) -> Self;
    /// Power with a real exponent.
    fn powf(self, e: Self) -> Self;
    /// Power with an integer exponent.
    fn powi(self, e: i32) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Lane-wise minimum (NaN-propagating behaviour of `f32::min`).
    fn min(self, o: Self) -> Self;
    /// Lane-wise maximum.
    fn max(self, o: Self) -> Self;
    /// Fused multiply-add: `self * a + b`.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Reciprocal.
    fn recip(self) -> Self;
    /// True if the value is finite (not NaN and not infinite).
    fn is_finite(self) -> bool;
}

macro_rules! impl_real {
    ($t:ty, $digits:expr) => {
        impl Real for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const HALF: Self = 0.5;
            const TWO: Self = 2.0;
            const EPSILON: Self = <$t>::EPSILON;
            const PI: Self = std::f64::consts::PI as $t;
            const DIGITS: u32 = $digits;

            #[inline(always)]
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline(always)]
            fn exp(self) -> Self {
                <$t>::exp(self)
            }
            #[inline(always)]
            fn ln(self) -> Self {
                <$t>::ln(self)
            }
            #[inline(always)]
            fn sin(self) -> Self {
                <$t>::sin(self)
            }
            #[inline(always)]
            fn cos(self) -> Self {
                <$t>::cos(self)
            }
            #[inline(always)]
            fn powf(self, e: Self) -> Self {
                <$t>::powf(self, e)
            }
            #[inline(always)]
            fn powi(self, e: i32) -> Self {
                <$t>::powi(self, e)
            }
            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn min(self, o: Self) -> Self {
                <$t>::min(self, o)
            }
            #[inline(always)]
            fn max(self, o: Self) -> Self {
                <$t>::max(self, o)
            }
            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                <$t>::mul_add(self, a, b)
            }
            #[inline(always)]
            fn recip(self) -> Self {
                <$t>::recip(self)
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
        }
    };
}

impl_real!(f32, 6);
impl_real!(f64, 15);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Real>() {
        let x = T::from_f64(1.5);
        assert_eq!(x.to_f64(), 1.5);
        assert_eq!(T::ZERO.to_f64(), 0.0);
        assert_eq!(T::ONE.to_f64(), 1.0);
        assert_eq!(T::HALF.to_f64(), 0.5);
        assert_eq!(T::TWO.to_f64(), 2.0);
    }

    #[test]
    fn roundtrip_f32_f64() {
        roundtrip::<f32>();
        roundtrip::<f64>();
    }

    #[test]
    fn math_ops_match_std() {
        let x = 0.7_f64;
        assert_eq!(Real::sqrt(x), x.sqrt());
        assert_eq!(Real::exp(x), x.exp());
        assert_eq!(Real::sin(x), x.sin());
        assert_eq!(Real::cos(x), x.cos());
        assert_eq!(Real::powf(x, 2.3), x.powf(2.3));
        assert_eq!(Real::powi(x, 3), x.powi(3));
        assert_eq!(Real::mul_add(x, 2.0, 1.0), x.mul_add(2.0, 1.0));
    }

    #[test]
    fn pi_constant_matches() {
        assert_eq!(<f64 as Real>::PI, std::f64::consts::PI);
        assert_eq!(<f32 as Real>::PI, std::f32::consts::PI);
    }

    #[test]
    fn from_usize_is_exact_for_small_values() {
        assert_eq!(<f32 as Real>::from_usize(12), 12.0_f32);
        assert_eq!(<f64 as Real>::from_usize(1 << 20), (1u64 << 20) as f64);
    }

    #[test]
    fn min_max_and_abs() {
        assert_eq!(Real::min(3.0_f64, -1.0), -1.0);
        assert_eq!(Real::max(3.0_f64, -1.0), 3.0);
        assert_eq!(Real::abs(-2.5_f32), 2.5);
    }

    #[test]
    fn is_finite_detects_nan_and_inf() {
        assert!(Real::is_finite(1.0_f64));
        assert!(!Real::is_finite(f64::NAN));
        assert!(!Real::is_finite(f32::INFINITY));
    }
}
