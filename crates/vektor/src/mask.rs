//! Vector masks and vector-wide conditionals (building block 1).
//!
//! A [`SimdM<W>`] holds one boolean per lane. The Tersoff kernels use
//! vector-wide conditionals ([`SimdM::all`], [`SimdM::any`], [`SimdM::none`])
//! to decide whether a whole vector can take a branch together — this is what
//! the paper relies on to avoid "excessive masking" (Sec. V-A), and on the
//! GPU back-end the same operation is a warp vote.

use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, BitXor, Not};

/// A per-lane boolean mask of width `W`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SimdM<const W: usize>(pub [bool; W]);

impl<const W: usize> SimdM<W> {
    /// All lanes set.
    #[inline(always)]
    pub fn splat(b: bool) -> Self {
        SimdM([b; W])
    }

    /// All lanes true.
    #[inline(always)]
    pub fn all_true() -> Self {
        Self::splat(true)
    }

    /// All lanes false.
    #[inline(always)]
    pub fn all_false() -> Self {
        Self::splat(false)
    }

    /// Construct from an array of lane flags.
    #[inline(always)]
    pub fn from_array(a: [bool; W]) -> Self {
        SimdM(a)
    }

    /// Lane values as an array.
    #[inline(always)]
    pub fn to_array(self) -> [bool; W] {
        self.0
    }

    /// Read one lane.
    #[inline(always)]
    pub fn lane(&self, i: usize) -> bool {
        self.0[i]
    }

    /// Set one lane.
    #[inline(always)]
    pub fn set_lane(&mut self, i: usize, b: bool) {
        self.0[i] = b;
    }

    /// Vector-wide conditional: true if the condition holds in **every** lane.
    #[inline(always)]
    pub fn all(&self) -> bool {
        self.0.iter().all(|&b| b)
    }

    /// Vector-wide conditional: true if the condition holds in **any** lane.
    #[inline(always)]
    pub fn any(&self) -> bool {
        self.0.iter().any(|&b| b)
    }

    /// True if no lane is set.
    #[inline(always)]
    pub fn none(&self) -> bool {
        !self.any()
    }

    /// Number of active lanes (used by the lane-occupancy instrumentation
    /// that reproduces Fig. 2 of the paper).
    #[inline(always)]
    pub fn count(&self) -> usize {
        self.0.iter().filter(|&&b| b).count()
    }

    /// Occupancy in `[0, 1]`: active lanes over total lanes.
    #[inline(always)]
    pub fn occupancy(&self) -> f64 {
        self.count() as f64 / W as f64
    }

    /// Index of the first active lane, if any.
    #[inline(always)]
    pub fn first_set(&self) -> Option<usize> {
        self.0.iter().position(|&b| b)
    }

    /// A mask with the first `n` lanes active — the standard tail mask used
    /// when a loop trip count is not a multiple of the vector width.
    #[inline(always)]
    pub fn prefix(n: usize) -> Self {
        let mut m = [false; W];
        for (i, lane) in m.iter_mut().enumerate() {
            *lane = i < n;
        }
        SimdM(m)
    }

    /// Lane-wise select between two masks.
    #[inline(always)]
    pub fn select(self, if_true: Self, if_false: Self) -> Self {
        let mut out = [false; W];
        for i in 0..W {
            out[i] = if self.0[i] {
                if_true.0[i]
            } else {
                if_false.0[i]
            };
        }
        SimdM(out)
    }

    /// `self & !other`.
    #[inline(always)]
    pub fn and_not(self, other: Self) -> Self {
        self & !other
    }
}

impl<const W: usize> Default for SimdM<W> {
    fn default() -> Self {
        Self::all_false()
    }
}

impl<const W: usize> BitAnd for SimdM<W> {
    type Output = Self;
    #[inline(always)]
    fn bitand(self, rhs: Self) -> Self {
        let mut out = [false; W];
        for i in 0..W {
            out[i] = self.0[i] & rhs.0[i];
        }
        SimdM(out)
    }
}

impl<const W: usize> BitOr for SimdM<W> {
    type Output = Self;
    #[inline(always)]
    fn bitor(self, rhs: Self) -> Self {
        let mut out = [false; W];
        for i in 0..W {
            out[i] = self.0[i] | rhs.0[i];
        }
        SimdM(out)
    }
}

impl<const W: usize> BitXor for SimdM<W> {
    type Output = Self;
    #[inline(always)]
    fn bitxor(self, rhs: Self) -> Self {
        let mut out = [false; W];
        for i in 0..W {
            out[i] = self.0[i] ^ rhs.0[i];
        }
        SimdM(out)
    }
}

impl<const W: usize> Not for SimdM<W> {
    type Output = Self;
    #[inline(always)]
    fn not(self) -> Self {
        let mut out = [false; W];
        for i in 0..W {
            out[i] = !self.0[i];
        }
        SimdM(out)
    }
}

impl<const W: usize> BitAndAssign for SimdM<W> {
    #[inline(always)]
    fn bitand_assign(&mut self, rhs: Self) {
        *self = *self & rhs;
    }
}

impl<const W: usize> BitOrAssign for SimdM<W> {
    #[inline(always)]
    fn bitor_assign(&mut self, rhs: Self) {
        *self = *self | rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splat_and_queries() {
        let t = SimdM::<8>::all_true();
        let f = SimdM::<8>::all_false();
        assert!(t.all() && t.any() && !t.none());
        assert!(!f.all() && !f.any() && f.none());
        assert_eq!(t.count(), 8);
        assert_eq!(f.count(), 0);
    }

    #[test]
    fn prefix_masks() {
        let m = SimdM::<4>::prefix(2);
        assert_eq!(m.to_array(), [true, true, false, false]);
        assert_eq!(SimdM::<4>::prefix(0).count(), 0);
        assert_eq!(SimdM::<4>::prefix(4).count(), 4);
        assert_eq!(SimdM::<4>::prefix(99).count(), 4);
    }

    #[test]
    fn boolean_algebra() {
        let a = SimdM::<4>::from_array([true, true, false, false]);
        let b = SimdM::<4>::from_array([true, false, true, false]);
        assert_eq!((a & b).to_array(), [true, false, false, false]);
        assert_eq!((a | b).to_array(), [true, true, true, false]);
        assert_eq!((a ^ b).to_array(), [false, true, true, false]);
        assert_eq!((!a).to_array(), [false, false, true, true]);
        assert_eq!(a.and_not(b).to_array(), [false, true, false, false]);
    }

    #[test]
    fn occupancy_and_first_set() {
        let a = SimdM::<4>::from_array([false, true, false, true]);
        assert_eq!(a.occupancy(), 0.5);
        assert_eq!(a.first_set(), Some(1));
        assert_eq!(SimdM::<4>::all_false().first_set(), None);
    }

    #[test]
    fn lane_set_and_get() {
        let mut m = SimdM::<4>::all_false();
        m.set_lane(2, true);
        assert!(m.lane(2));
        assert!(!m.lane(0));
        assert_eq!(m.count(), 1);
    }

    #[test]
    fn assign_ops() {
        let mut a = SimdM::<4>::from_array([true, true, false, false]);
        let b = SimdM::<4>::from_array([true, false, true, false]);
        a &= b;
        assert_eq!(a.to_array(), [true, false, false, false]);
        a |= b;
        assert_eq!(a.to_array(), [true, false, true, false]);
    }

    #[test]
    fn select_between_masks() {
        let sel = SimdM::<4>::from_array([true, false, true, false]);
        let t = SimdM::<4>::all_true();
        let f = SimdM::<4>::all_false();
        assert_eq!(sel.select(t, f).to_array(), [true, false, true, false]);
    }

    #[test]
    fn width_one_behaves_like_bool() {
        let t = SimdM::<1>::splat(true);
        assert!(t.all() && t.any());
        assert_eq!(t.count(), 1);
    }
}
