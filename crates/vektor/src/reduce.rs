//! In-register reductions (building block 2) beyond the per-vector
//! `horizontal_sum`: compensated accumulators for the energy/virial sums and
//! helpers to reduce several vectors at once.
//!
//! These exist because the accumulation targets of the Tersoff kernel (total
//! potential energy, the six virial components, the force on the central atom
//! `i`) are *uniform across lanes*, so the reduction can stay in registers and
//! only one scalar add per vector hits memory — this is exactly the case the
//! paper distinguishes from OpenMP's reduction clause.

use crate::mask::SimdM;
use crate::real::Real;
use crate::vector::SimdF;

/// A Kahan (compensated) scalar accumulator.
///
/// The single-precision solver (`Opt-S`) accumulates the global energy in the
/// lane precision; compensation keeps the round-off of that accumulation from
/// dominating the figure-3 style drift measurements.
#[derive(Copy, Clone, Debug, Default)]
pub struct KahanSum<T: Real> {
    sum: T,
    compensation: T,
}

impl<T: Real> KahanSum<T> {
    /// New accumulator at zero.
    pub fn new() -> Self {
        KahanSum {
            sum: T::ZERO,
            compensation: T::ZERO,
        }
    }

    /// Add a scalar value.
    #[inline(always)]
    pub fn add(&mut self, value: T) {
        let y = value - self.compensation;
        let t = self.sum + y;
        self.compensation = (t - self.sum) - y;
        self.sum = t;
    }

    /// Add the horizontal sum of the active lanes of a vector.
    #[inline(always)]
    pub fn add_vector<const W: usize>(&mut self, v: SimdF<T, W>, mask: SimdM<W>) {
        self.add(v.masked_sum(mask));
    }

    /// Current value.
    #[inline(always)]
    pub fn value(&self) -> T {
        self.sum
    }
}

/// An accumulator that keeps a vector of partial sums and reduces only when
/// the final value is requested. This is the idiomatic way to sum a long
/// stream of vectors: one vector add per step, a single horizontal reduction
/// at the end.
#[derive(Copy, Clone, Debug)]
pub struct VectorAccumulator<T: Real, const W: usize> {
    partial: SimdF<T, W>,
}

impl<T: Real, const W: usize> Default for VectorAccumulator<T, W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Real, const W: usize> VectorAccumulator<T, W> {
    /// New accumulator at zero.
    pub fn new() -> Self {
        VectorAccumulator {
            partial: SimdF::zero(),
        }
    }

    /// Accumulate the active lanes of `v`.
    #[inline(always)]
    pub fn add(&mut self, v: SimdF<T, W>, mask: SimdM<W>) {
        self.partial += v.masked(mask);
    }

    /// Accumulate all lanes of `v`.
    #[inline(always)]
    pub fn add_all(&mut self, v: SimdF<T, W>) {
        self.partial += v;
    }

    /// Final horizontal reduction.
    #[inline(always)]
    pub fn reduce(&self) -> T {
        self.partial.horizontal_sum()
    }

    /// Final reduction converted to `f64` (for mixed-precision drivers that
    /// compute in `f32` but report in `f64`).
    #[inline(always)]
    pub fn reduce_f64(&self) -> f64 {
        self.partial.to_f64_array().iter().sum()
    }
}

/// Reduce three vectors (a force triple) over their active lanes at once.
#[inline(always)]
pub fn reduce3<T: Real, const W: usize>(v: [SimdF<T, W>; 3], mask: SimdM<W>) -> [T; 3] {
    [
        v[0].masked_sum(mask),
        v[1].masked_sum(mask),
        v[2].masked_sum(mask),
    ]
}

/// Sum a slice by processing `W` lanes at a time with a vector accumulator
/// and a masked tail. Exercised by tests as the canonical reduction pattern.
pub fn sum_slice<T: Real, const W: usize>(data: &[T]) -> T {
    let mut acc = VectorAccumulator::<T, W>::new();
    let mut offset = 0;
    while offset + W <= data.len() {
        acc.add_all(SimdF::load(data, offset));
        offset += W;
    }
    if offset < data.len() {
        let (v, m) = SimdF::<T, W>::load_partial(data, offset, T::ZERO);
        acc.add(v, m);
    }
    acc.reduce()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kahan_beats_naive_on_pathological_input() {
        // 1 + 1e-8 repeated: naive f32 summation loses the small additions.
        let mut kahan = KahanSum::<f32>::new();
        let mut naive = 0.0f32;
        kahan.add(1.0);
        naive += 1.0;
        for _ in 0..100_000 {
            kahan.add(1e-8);
            naive += 1e-8;
        }
        let exact = 1.0 + 100_000.0 * 1e-8;
        assert!((kahan.value() - exact as f32).abs() < 1e-6);
        assert!((naive - exact as f32).abs() > 1e-4);
    }

    #[test]
    fn kahan_add_vector_respects_mask() {
        let mut k = KahanSum::<f64>::new();
        let v = SimdF::<f64, 4>::from_array([1.0, 2.0, 3.0, 4.0]);
        k.add_vector(v, SimdM::from_array([true, false, true, false]));
        assert_eq!(k.value(), 4.0);
    }

    #[test]
    fn vector_accumulator_sums() {
        let mut acc = VectorAccumulator::<f64, 4>::new();
        for i in 0..8 {
            acc.add_all(SimdF::splat(i as f64));
        }
        assert_eq!(acc.reduce(), 4.0 * (0..8).sum::<i32>() as f64);
    }

    #[test]
    fn vector_accumulator_masked_and_f64_reduction() {
        let mut acc = VectorAccumulator::<f32, 4>::new();
        acc.add(
            SimdF::splat(1.5),
            SimdM::from_array([true, true, false, false]),
        );
        assert_eq!(acc.reduce(), 3.0);
        assert_eq!(acc.reduce_f64(), 3.0);
    }

    #[test]
    fn reduce3_reduces_each_component() {
        let v = [
            SimdF::<f64, 4>::from_array([1.0, 1.0, 1.0, 1.0]),
            SimdF::<f64, 4>::from_array([2.0, 2.0, 2.0, 2.0]),
            SimdF::<f64, 4>::from_array([3.0, 3.0, 3.0, 3.0]),
        ];
        assert_eq!(reduce3(v, SimdM::all_true()), [4.0, 8.0, 12.0]);
        assert_eq!(reduce3(v, SimdM::prefix(1)), [1.0, 2.0, 3.0]);
    }

    #[test]
    fn sum_slice_handles_tails() {
        let data: Vec<f64> = (1..=11).map(|x| x as f64).collect();
        assert_eq!(sum_slice::<f64, 4>(&data), 66.0);
        assert_eq!(sum_slice::<f64, 8>(&data), 66.0);
        assert_eq!(sum_slice::<f64, 16>(&data), 66.0);
        assert_eq!(sum_slice::<f64, 1>(&data), 66.0);
        assert_eq!(sum_slice::<f64, 4>(&[]), 0.0);
    }
}
