//! Adjacent-gather operations (building block 4).
//!
//! In the Tersoff kernel the two dominant irregular access patterns are:
//!
//! * loading the x/y/z coordinates of a vector of atoms, i.e. three adjacent
//!   values per lane from an `[x, y, z, x, y, z, ...]` (AoS) buffer, and
//! * loading a small record of potential parameters for a vector of type
//!   triplets.
//!
//! The paper calls these *adjacent gathers* (Sec. V-A, item 4): instead of
//! issuing one hardware gather per field, the backend may load contiguous
//! chunks and transpose in registers. Here the transposition is expressed
//! directly; LLVM lowers it to shuffles when profitable, and on machines
//! without fast native gathers this is exactly the code one wants.

use crate::mask::SimdM;
use crate::real::Real;
use crate::simd_backend::{PortableBackend, SimdBackend};
use crate::vector::SimdF;

/// Gather three adjacent values (e.g. x, y, z of a position) per lane from an
/// AoS buffer with a compile-time stride.
///
/// `buffer` is indexed as `buffer[idx[lane] * STRIDE + component]`. Returns
/// one vector per component. Inactive lanes produce zeros.
///
/// Portable form of [`adjacent_gather3_in`] (backend-parameterized kernels
/// use the latter; the intrinsic backends issue one hardware masked gather
/// per component over scaled indices — the paper's "adjacent gather on
/// machines with native gathers" strategy).
#[inline(always)]
pub fn adjacent_gather3<T: Real, const W: usize, const STRIDE: usize>(
    buffer: &[T],
    idx: &[usize; W],
    mask: SimdM<W>,
) -> [SimdF<T, W>; 3] {
    adjacent_gather3_in::<PortableBackend, T, W, STRIDE>(buffer, idx, mask)
}

/// [`adjacent_gather3`] on an explicit backend — what the trampolined
/// kernels call.
#[inline(always)]
pub fn adjacent_gather3_in<B: SimdBackend, T: Real, const W: usize, const STRIDE: usize>(
    buffer: &[T],
    idx: &[usize; W],
    mask: SimdM<W>,
) -> [SimdF<T, W>; 3] {
    B::adjacent_gather3::<T, W, STRIDE>(buffer, idx, mask)
}

/// Gather `N` adjacent values per lane (generic record gather used for the
/// per-pair potential-parameter lookup, where a lane's record is the packed
/// `(i-type, j-type)` parameter block).
///
/// Portable form of [`adjacent_gather_n_in`].
#[inline(always)]
pub fn adjacent_gather_n<T: Real, const W: usize, const N: usize>(
    buffer: &[T],
    idx: &[usize; W],
    mask: SimdM<W>,
) -> [SimdF<T, W>; N] {
    adjacent_gather_n_in::<PortableBackend, T, W, N>(buffer, idx, mask)
}

/// [`adjacent_gather_n`] on an explicit backend — one hardware gather per
/// field on the intrinsic implementations.
#[inline(always)]
pub fn adjacent_gather_n_in<B: SimdBackend, T: Real, const W: usize, const N: usize>(
    buffer: &[T],
    idx: &[usize; W],
    mask: SimdM<W>,
) -> [SimdF<T, W>; N] {
    B::adjacent_gather_n::<T, W, N>(buffer, idx, mask)
}

/// Scatter three per-lane values back to an AoS buffer (the inverse of
/// [`adjacent_gather3`]); used to write per-atom force contributions when the
/// target locations are guaranteed distinct (scheme 1a).
#[inline(always)]
pub fn adjacent_scatter3<T: Real, const W: usize, const STRIDE: usize>(
    buffer: &mut [T],
    idx: &[usize; W],
    mask: SimdM<W>,
    values: [SimdF<T, W>; 3],
) {
    for lane in 0..W {
        if mask.lane(lane) {
            let base = idx[lane] * STRIDE;
            buffer[base] = values[0].lane(lane);
            buffer[base + 1] = values[1].lane(lane);
            buffer[base + 2] = values[2].lane(lane);
        }
    }
}

/// Scatter-*accumulate* three per-lane values into an AoS buffer, assuming
/// the active lanes target distinct records. Debug builds assert the
/// distinctness precondition; use [`crate::conflict::scatter_add3`] when the
/// guarantee does not hold (scheme 1b). Portable form of
/// [`adjacent_scatter_add3_distinct_in`].
#[inline(always)]
pub fn adjacent_scatter_add3_distinct<T: Real, const W: usize, const STRIDE: usize>(
    buffer: &mut [T],
    idx: &[usize; W],
    mask: SimdM<W>,
    values: [SimdF<T, W>; 3],
) {
    adjacent_scatter_add3_distinct_in::<PortableBackend, T, W, STRIDE>(buffer, idx, mask, values)
}

/// [`adjacent_scatter_add3_distinct`] on an explicit backend: distinct
/// targets let the AVX-512 implementation use hardware scatter (gather,
/// add, scatter — no ordering constraints). The debug-build distinctness
/// assertion guards every backend.
#[inline(always)]
pub fn adjacent_scatter_add3_distinct_in<
    B: SimdBackend,
    T: Real,
    const W: usize,
    const STRIDE: usize,
>(
    buffer: &mut [T],
    idx: &[usize; W],
    mask: SimdM<W>,
    values: [SimdF<T, W>; 3],
) {
    // Allocation-free distinctness check (the hot path must not allocate
    // even in debug builds, where the allocation-audit tests run).
    #[cfg(debug_assertions)]
    for a in 0..W {
        for b in (a + 1)..W {
            debug_assert!(
                !(mask.lane(a) && mask.lane(b) && idx[a] == idx[b]),
                "adjacent_scatter_add3_distinct called with conflicting lane targets"
            );
        }
    }
    B::scatter_add3_distinct::<T, W, STRIDE>(buffer, idx, mask, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aos_buffer(n: usize) -> Vec<f64> {
        // atom i -> (100 i, 100 i + 1, 100 i + 2)
        (0..n)
            .flat_map(|i| {
                [
                    100.0 * i as f64,
                    100.0 * i as f64 + 1.0,
                    100.0 * i as f64 + 2.0,
                ]
            })
            .collect()
    }

    #[test]
    fn gather3_reads_components() {
        let buf = aos_buffer(6);
        let idx = [5usize, 0, 3, 3];
        let [x, y, z] = adjacent_gather3::<f64, 4, 3>(&buf, &idx, SimdM::all_true());
        assert_eq!(x.to_array(), [500.0, 0.0, 300.0, 300.0]);
        assert_eq!(y.to_array(), [501.0, 1.0, 301.0, 301.0]);
        assert_eq!(z.to_array(), [502.0, 2.0, 302.0, 302.0]);
    }

    #[test]
    fn gather3_masks_inactive_lanes() {
        let buf = aos_buffer(2);
        // Lane 1 points far out of range but is inactive, so it must not be
        // dereferenced.
        let idx = [1usize, usize::MAX / 8, 0, 0];
        let mask = SimdM::from_array([true, false, true, false]);
        let [x, _, _] = adjacent_gather3::<f64, 4, 3>(&buf, &idx, mask);
        assert_eq!(x.to_array(), [100.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn gather_n_reads_records() {
        // Two records of four fields each.
        let buf: Vec<f64> = vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0];
        let idx = [1usize, 0];
        let fields = adjacent_gather_n::<f64, 2, 4>(&buf, &idx, SimdM::all_true());
        assert_eq!(fields[0].to_array(), [10.0, 1.0]);
        assert_eq!(fields[3].to_array(), [40.0, 4.0]);
    }

    #[test]
    fn scatter3_roundtrips_gather3() {
        let mut buf = vec![0.0f64; 12];
        let idx = [0usize, 2, 3, 1];
        let vals = [
            SimdF::from_array([1.0, 2.0, 3.0, 4.0]),
            SimdF::from_array([10.0, 20.0, 30.0, 40.0]),
            SimdF::from_array([100.0, 200.0, 300.0, 400.0]),
        ];
        adjacent_scatter3::<f64, 4, 3>(&mut buf, &idx, SimdM::all_true(), vals);
        let [x, y, z] = adjacent_gather3::<f64, 4, 3>(&buf, &idx, SimdM::all_true());
        assert_eq!(x.to_array(), [1.0, 2.0, 3.0, 4.0]);
        assert_eq!(y.to_array(), [10.0, 20.0, 30.0, 40.0]);
        assert_eq!(z.to_array(), [100.0, 200.0, 300.0, 400.0]);
    }

    #[test]
    fn scatter_add_distinct_accumulates() {
        let mut buf = vec![1.0f64; 9];
        let idx = [0usize, 1, 2, 0];
        let mask = SimdM::from_array([true, true, true, false]); // lane 3 (dup) inactive
        let vals = [SimdF::splat(1.0), SimdF::splat(2.0), SimdF::splat(3.0)];
        adjacent_scatter_add3_distinct::<f64, 4, 3>(&mut buf, &idx, mask, vals);
        assert_eq!(buf, vec![2.0, 3.0, 4.0, 2.0, 3.0, 4.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "conflicting lane targets")]
    #[cfg(debug_assertions)]
    fn scatter_add_distinct_panics_on_conflict_in_debug() {
        let mut buf = vec![0.0f64; 6];
        let idx = [0usize, 0, 1, 1];
        adjacent_scatter_add3_distinct::<f64, 4, 3>(
            &mut buf,
            &idx,
            SimdM::all_true(),
            [SimdF::splat(1.0); 3],
        );
    }

    #[test]
    fn gather_with_wider_stride() {
        // Stride-4 AoS layout (x, y, z, padding) as used by padded position
        // buffers for alignment.
        let buf: Vec<f64> = (0..4)
            .flat_map(|i| [i as f64, i as f64 + 0.1, i as f64 + 0.2, -1.0])
            .collect();
        let idx = [3usize, 1];
        let [x, y, z] = adjacent_gather3::<f64, 2, 4>(&buf, &idx, SimdM::all_true());
        assert_eq!(x.to_array(), [3.0, 1.0]);
        assert_eq!(y.to_array(), [3.1, 1.1]);
        assert_eq!(z.to_array(), [3.2, 1.2]);
    }
}
