//! Manual perf probe (not part of the suite): the measurements behind the
//! kernel-instance design. Times a synthetic kernel per backend instance
//! launched through `run_kernel`, the same code in direct
//! `#[target_feature]` wrappers with real parameter lists, and each op
//! class with explicit intrinsics vs portable lane loops under identical
//! features. Two standing results: (1) auto-vectorized lane loops beat the
//! explicit per-op intrinsic wrappers for everything except the AVX-512
//! scatter (mask/lane marshalling dominates the wrappers), which is why
//! `Avx2Kernel`/`Avx512Kernel` are portable-ops-under-target-feature;
//! (2) `run_kernel`'s generic adapter hides slices behind an opaque
//! struct and costs the vectorizer its `noalias` facts — hot kernels
//! declare their own `#[target_feature]` entries with full parameter
//! lists instead (as the Tersoff kernels do). Run with:
//!
//! ```text
//! cargo test --release -p vektor --test perf_probe -- --ignored --nocapture
//! ```

use std::time::Instant;
use vektor::dispatch::{run_kernel, BackendImpl, KernelBody};
use vektor::{PortableBackend, SimdBackend, SimdF, SimdM};

const N: usize = 4096;
const ITERS: usize = 200_000;
const W: usize = 16;

#[inline(always)]
fn pass<B: SimdBackend>(buf: &[f32], idx_base: &[usize]) -> f32 {
    let mut acc = SimdF::<f32, W>::zero();
    let mask = SimdM::<W>::prefix(13);
    for it in 0..ITERS {
        let mut idx = [0usize; W];
        for l in 0..W {
            idx[l] = idx_base[(it + l * 7) % N] % (N / 4);
        }
        let [x, y, z] = B::adjacent_gather3::<f32, W, 4>(buf, &idx, mask);
        let s = B::select(x.simd_lt(y), x, y);
        let f = B::mul_add(s, z, x);
        acc += B::masked(f, mask);
    }
    B::horizontal_sum(acc)
}

struct Probe<'a> {
    buf: &'a [f32],
    idx: &'a [usize],
}

impl KernelBody for Probe<'_> {
    type Output = f32;
    #[inline(always)]
    fn run<B: SimdBackend>(self) -> f32 {
        pass::<B>(self.buf, self.idx)
    }
}

/// Portable lane loops compiled with avx512 codegen — no explicit
/// intrinsics, pure auto-vectorization under the wide feature set.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma,avx512f")]
unsafe fn portable_under_avx512(buf: &[f32], idx: &[usize]) -> f32 {
    pass::<PortableBackend>(buf, idx)
}

/// Same, but with the Avx512Kernel type (isolates type-vs-structure).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma,avx512f")]
unsafe fn kernel_type_under_avx512(buf: &[f32], idx: &[usize]) -> f32 {
    pass::<vektor::Avx512Kernel>(buf, idx)
}

/// Per-op probes: each op in isolation, intrinsics vs portable, both
/// compiled inside the avx512 target_feature envelope (the trampoline's
/// codegen conditions).
#[cfg(target_arch = "x86_64")]
mod per_op {
    use super::*;
    use vektor::Avx512Backend;

    #[inline(always)]
    pub fn gathers<B: SimdBackend>(buf: &[f32], idx_base: &[usize]) -> f32 {
        let mut acc = SimdF::<f32, W>::zero();
        let mask = SimdM::<W>::prefix(13);
        for it in 0..ITERS {
            let mut idx = [0usize; W];
            for l in 0..W {
                idx[l] = idx_base[(it + l * 7) % N] % (N / 4);
            }
            acc += B::adjacent_gather3::<f32, W, 4>(buf, &idx, mask)[1];
        }
        acc.horizontal_sum()
    }

    #[inline(always)]
    pub fn scatters<B: SimdBackend>(buf: &mut [f32], idx_base: &[usize]) -> f32 {
        let mask = SimdM::<W>::prefix(13);
        let vals = [SimdF::<f32, W>::splat(1.0); 3];
        for it in 0..ITERS {
            let mut idx = [0usize; W];
            for (l, slot) in idx.iter_mut().enumerate() {
                // pairwise distinct by construction
                *slot = l * (N / 4 / W) + idx_base[it % N] % (N / 4 / W);
            }
            B::scatter_add3_distinct::<f32, W, 4>(buf, &idx, mask, vals);
        }
        buf[0]
    }

    #[inline(always)]
    pub fn blends<B: SimdBackend>(buf: &[f32]) -> f32 {
        let mut acc = SimdF::<f32, W>::zero();
        let mask = SimdM::<W>::prefix(13);
        for it in 0..ITERS {
            let a = SimdF::<f32, W>::load(buf, it % (N - W));
            let b = SimdF::<f32, W>::load(buf, (it * 3) % (N - W));
            let s = B::select(a.simd_lt(b), a, b);
            acc += B::masked(B::mul_add(s, b, a), mask);
        }
        B::horizontal_sum(acc)
    }

    macro_rules! tf_wrap {
        ($name:ident, $inner:ident, $b:ty, ($($arg:ident: $t:ty),*)) => {
            #[target_feature(enable = "avx2,fma,avx512f")]
            pub unsafe fn $name($($arg: $t),*) -> f32 {
                $inner::<$b>($($arg),*)
            }
        };
    }

    tf_wrap!(gathers_hw, gathers, Avx512Backend, (buf: &[f32], idx: &[usize]));
    tf_wrap!(gathers_pt, gathers, PortableBackend, (buf: &[f32], idx: &[usize]));
    tf_wrap!(scatters_hw, scatters, Avx512Backend, (buf: &mut [f32], idx: &[usize]));
    tf_wrap!(scatters_pt, scatters, PortableBackend, (buf: &mut [f32], idx: &[usize]));
    tf_wrap!(blends_hw, blends, Avx512Backend, (buf: &[f32]));
    tf_wrap!(blends_pt, blends, PortableBackend, (buf: &[f32]));
}

#[test]
#[ignore]
fn probe() {
    let buf: Vec<f32> = (0..N).map(|i| (i as f32) * 0.37).collect();
    let idx: Vec<usize> = (0..N).map(|i| (i * 2654435761) % N).collect();
    let time = |label: &str, f: &dyn Fn() -> f32| {
        // warmup
        let _ = f();
        let mut best = f64::MAX;
        for _ in 0..5 {
            let t = Instant::now();
            let v = f();
            let dt = t.elapsed().as_secs_f64();
            if dt < best {
                best = dt;
            }
            std::hint::black_box(v);
        }
        println!("{label:>28}: {:>9.4} ms", best * 1e3);
    };
    time("portable (baseline codegen)", &|| {
        run_kernel(
            BackendImpl::Portable,
            Probe {
                buf: &buf,
                idx: &idx,
            },
        )
    });
    time("avx2 instance (run_kernel)", &|| {
        run_kernel(
            BackendImpl::Avx2,
            Probe {
                buf: &buf,
                idx: &idx,
            },
        )
    });
    time("avx512 instance (run_kernel)", &|| {
        run_kernel(
            BackendImpl::Avx512,
            Probe {
                buf: &buf,
                idx: &idx,
            },
        )
    });
    #[cfg(target_arch = "x86_64")]
    if vektor::dispatch::supported(BackendImpl::Avx512) {
        time("portable under avx512 tf", &|| unsafe {
            portable_under_avx512(&buf, &idx)
        });
        time("Avx512Kernel direct tf", &|| unsafe {
            kernel_type_under_avx512(&buf, &idx)
        });
        println!("  --- per-op, both sides compiled under avx512 tf ---");
        time("gathers intrinsic", &|| unsafe {
            per_op::gathers_hw(&buf, &idx)
        });
        time("gathers portable", &|| unsafe {
            per_op::gathers_pt(&buf, &idx)
        });
        let sbuf = buf.clone();
        time("scatters intrinsic", &|| unsafe {
            per_op::scatters_hw(&mut sbuf.clone(), &idx)
        });
        time("scatters portable", &|| unsafe {
            per_op::scatters_pt(&mut sbuf.clone(), &idx)
        });
        time("select/fma/hsum intrinsic", &|| unsafe {
            per_op::blends_hw(&buf)
        });
        time("select/fma/hsum portable", &|| unsafe {
            per_op::blends_pt(&buf)
        });
    }
}
