//! Property-based tests for the vector abstraction: every vector operation
//! must agree with its scalar counterpart lane-by-lane, and the conflict /
//! reduction building blocks must agree with straightforward serial code.

use proptest::prelude::*;
use vektor::conflict::{scatter_add3, scatter_add3_conflict_detect};
use vektor::gather::{adjacent_gather3, adjacent_gather_n};
use vektor::math::{fast_exp_scalar, fast_sin_halfpi_scalar};
use vektor::reduce::{sum_slice, KahanSum};
use vektor::{SimdF, SimdI, SimdM};

const W: usize = 8;

fn arb_lanes() -> impl Strategy<Value = [f64; W]> {
    prop::array::uniform8(-1.0e3..1.0e3f64)
}

fn arb_mask() -> impl Strategy<Value = [bool; W]> {
    prop::array::uniform8(any::<bool>())
}

proptest! {
    #[test]
    fn add_matches_scalar(a in arb_lanes(), b in arb_lanes()) {
        let va = SimdF::<f64, W>::from_array(a);
        let vb = SimdF::<f64, W>::from_array(b);
        let sum = (va + vb).to_array();
        for i in 0..W {
            prop_assert_eq!(sum[i], a[i] + b[i]);
        }
    }

    #[test]
    fn mul_add_matches_scalar(a in arb_lanes(), b in arb_lanes(), c in arb_lanes()) {
        let v = SimdF::<f64, W>::from_array(a)
            .mul_add(SimdF::from_array(b), SimdF::from_array(c));
        for i in 0..W {
            prop_assert_eq!(v.lane(i), a[i].mul_add(b[i], c[i]));
        }
    }

    #[test]
    fn select_matches_scalar(a in arb_lanes(), b in arb_lanes(), m in arb_mask()) {
        let v = SimdF::<f64, W>::select(
            SimdM::from_array(m),
            SimdF::from_array(a),
            SimdF::from_array(b),
        );
        for i in 0..W {
            prop_assert_eq!(v.lane(i), if m[i] { a[i] } else { b[i] });
        }
    }

    #[test]
    fn comparisons_match_scalar(a in arb_lanes(), b in arb_lanes()) {
        let va = SimdF::<f64, W>::from_array(a);
        let vb = SimdF::<f64, W>::from_array(b);
        let lt = va.simd_lt(vb);
        let ge = va.simd_ge(vb);
        for i in 0..W {
            prop_assert_eq!(lt.lane(i), a[i] < b[i]);
            prop_assert_eq!(ge.lane(i), a[i] >= b[i]);
            prop_assert_ne!(lt.lane(i), ge.lane(i));
        }
    }

    #[test]
    fn horizontal_sum_close_to_serial(a in arb_lanes()) {
        let v = SimdF::<f64, W>::from_array(a);
        let serial: f64 = a.iter().sum();
        prop_assert!((v.horizontal_sum() - serial).abs() <= 1e-9 * (1.0 + serial.abs()));
    }

    #[test]
    fn masked_sum_only_counts_active(a in arb_lanes(), m in arb_mask()) {
        let v = SimdF::<f64, W>::from_array(a);
        let mask = SimdM::from_array(m);
        let serial: f64 = a.iter().zip(m.iter()).filter(|(_, &b)| b).map(|(x, _)| x).sum();
        prop_assert!((v.masked_sum(mask) - serial).abs() <= 1e-9 * (1.0 + serial.abs()));
    }

    #[test]
    fn sum_slice_matches_serial(data in prop::collection::vec(-1.0e3..1.0e3f64, 0..200)) {
        let serial: f64 = data.iter().sum();
        let v4 = sum_slice::<f64, 4>(&data);
        let v16 = sum_slice::<f64, 16>(&data);
        let tol = 1e-9 * (1.0 + serial.abs());
        prop_assert!((v4 - serial).abs() <= tol);
        prop_assert!((v16 - serial).abs() <= tol);
    }

    #[test]
    fn kahan_matches_exact_on_f64(data in prop::collection::vec(-1.0e6..1.0e6f64, 0..100)) {
        let mut k = KahanSum::<f64>::new();
        for &x in &data {
            k.add(x);
        }
        let serial: f64 = data.iter().sum();
        prop_assert!((k.value() - serial).abs() <= 1e-6 * (1.0 + serial.abs()));
    }

    #[test]
    fn conflict_detect_scatter_matches_serialized(
        idx in prop::array::uniform8(0usize..6),
        m in arb_mask(),
        vx in arb_lanes(),
        vy in arb_lanes(),
        vz in arb_lanes(),
    ) {
        let mask = SimdM::from_array(m);
        let vals = [
            SimdF::<f64, W>::from_array(vx),
            SimdF::<f64, W>::from_array(vy),
            SimdF::<f64, W>::from_array(vz),
        ];
        let mut serial = vec![0.0f64; 18];
        scatter_add3::<f64, W, 3>(&mut serial, &idx, mask, vals);

        let mut cd = vec![0.0f64; 18];
        let mut idx_i = [0i64; W];
        for i in 0..W {
            idx_i[i] = idx[i] as i64;
        }
        scatter_add3_conflict_detect::<f64, W, 3>(&mut cd, SimdI::from_array(idx_i), mask, vals);

        for i in 0..18 {
            prop_assert!((serial[i] - cd[i]).abs() <= 1e-9 * (1.0 + serial[i].abs()),
                "slot {}: serial {} vs cd {}", i, serial[i], cd[i]);
        }
    }

    #[test]
    fn adjacent_gather3_matches_direct_indexing(
        idx in prop::array::uniform8(0usize..10),
        m in arb_mask(),
    ) {
        let buf: Vec<f64> = (0..30).map(|i| i as f64 * 0.5).collect();
        let mask = SimdM::from_array(m);
        let [x, y, z] = adjacent_gather3::<f64, W, 3>(&buf, &idx, mask);
        for lane in 0..W {
            if m[lane] {
                prop_assert_eq!(x.lane(lane), buf[idx[lane] * 3]);
                prop_assert_eq!(y.lane(lane), buf[idx[lane] * 3 + 1]);
                prop_assert_eq!(z.lane(lane), buf[idx[lane] * 3 + 2]);
            } else {
                prop_assert_eq!(x.lane(lane), 0.0);
            }
        }
    }

    #[test]
    fn adjacent_gather_n_matches_direct_indexing(idx in prop::array::uniform8(0usize..5)) {
        let buf: Vec<f64> = (0..20).map(|i| (i * i) as f64).collect();
        let fields = adjacent_gather_n::<f64, W, 4>(&buf, &idx, SimdM::all_true());
        for lane in 0..W {
            for f in 0..4 {
                prop_assert_eq!(fields[f].lane(lane), buf[idx[lane] * 4 + f]);
            }
        }
    }

    #[test]
    fn fast_exp_relative_error_bounded(x in -69.0..69.0f64) {
        let approx = fast_exp_scalar::<f64>(x);
        let exact = x.exp();
        prop_assert!(((approx - exact) / exact).abs() < 5e-6);
    }

    #[test]
    fn fast_sin_error_bounded(x in -1.5707..1.5707f64) {
        prop_assert!((fast_sin_halfpi_scalar::<f64>(x) - x.sin()).abs() < 1e-5);
    }

    #[test]
    fn conflict_mask_is_sound(idx in prop::array::uniform8(0i64..4)) {
        // Every lane flagged as conflicting must indeed have an earlier lane
        // with the same index; unflagged active lanes must be first
        // occurrences.
        let v = SimdI::<W>::from_array(idx);
        let mask = SimdM::all_true();
        let conflicts = v.conflict_mask(mask);
        for lane in 0..W {
            let has_earlier_dup = (0..lane).any(|j| idx[j] == idx[lane]);
            prop_assert_eq!(conflicts.lane(lane), has_earlier_dup);
        }
    }
}
