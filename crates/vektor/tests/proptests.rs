//! Randomized property tests for the vector abstraction: every vector
//! operation must agree with its scalar counterpart lane-by-lane, and the
//! conflict / reduction building blocks must agree with straightforward
//! serial code.
//!
//! These were originally written with `proptest`; the offline build has no
//! registry access, so the same properties are now exercised over a
//! deterministic ChaCha8 case generator (256 cases per property, fixed seed
//! per test — failures are exactly reproducible).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use vektor::conflict::{scatter_add3, scatter_add3_conflict_detect};
use vektor::gather::{adjacent_gather3, adjacent_gather_n};
use vektor::math::{fast_exp_scalar, fast_sin_halfpi_scalar};
use vektor::reduce::{sum_slice, KahanSum};
use vektor::{SimdF, SimdI, SimdM};

const W: usize = 8;
const CASES: usize = 256;

fn lanes(rng: &mut ChaCha8Rng) -> [f64; W] {
    std::array::from_fn(|_| rng.gen_range(-1.0e3..1.0e3))
}

fn mask_lanes(rng: &mut ChaCha8Rng) -> [bool; W] {
    std::array::from_fn(|_| rng.gen_bool(0.5))
}

#[test]
fn add_matches_scalar() {
    let mut rng = ChaCha8Rng::seed_from_u64(101);
    for _ in 0..CASES {
        let (a, b) = (lanes(&mut rng), lanes(&mut rng));
        let sum = (SimdF::<f64, W>::from_array(a) + SimdF::from_array(b)).to_array();
        for i in 0..W {
            assert_eq!(sum[i], a[i] + b[i]);
        }
    }
}

#[test]
fn mul_add_matches_scalar() {
    let mut rng = ChaCha8Rng::seed_from_u64(102);
    for _ in 0..CASES {
        let (a, b, c) = (lanes(&mut rng), lanes(&mut rng), lanes(&mut rng));
        let v = SimdF::<f64, W>::from_array(a).mul_add(SimdF::from_array(b), SimdF::from_array(c));
        for i in 0..W {
            assert_eq!(v.lane(i), a[i].mul_add(b[i], c[i]));
        }
    }
}

#[test]
fn select_matches_scalar() {
    let mut rng = ChaCha8Rng::seed_from_u64(103);
    for _ in 0..CASES {
        let (a, b, m) = (lanes(&mut rng), lanes(&mut rng), mask_lanes(&mut rng));
        let v = SimdF::<f64, W>::select(
            SimdM::from_array(m),
            SimdF::from_array(a),
            SimdF::from_array(b),
        );
        for i in 0..W {
            assert_eq!(v.lane(i), if m[i] { a[i] } else { b[i] });
        }
    }
}

#[test]
fn comparisons_match_scalar() {
    let mut rng = ChaCha8Rng::seed_from_u64(104);
    for _ in 0..CASES {
        let (a, b) = (lanes(&mut rng), lanes(&mut rng));
        let va = SimdF::<f64, W>::from_array(a);
        let vb = SimdF::<f64, W>::from_array(b);
        let lt = va.simd_lt(vb);
        let ge = va.simd_ge(vb);
        for i in 0..W {
            assert_eq!(lt.lane(i), a[i] < b[i]);
            assert_eq!(ge.lane(i), a[i] >= b[i]);
            assert_ne!(lt.lane(i), ge.lane(i));
        }
    }
}

#[test]
fn horizontal_sum_close_to_serial() {
    let mut rng = ChaCha8Rng::seed_from_u64(105);
    for _ in 0..CASES {
        let a = lanes(&mut rng);
        let serial: f64 = a.iter().sum();
        let v = SimdF::<f64, W>::from_array(a);
        assert!((v.horizontal_sum() - serial).abs() <= 1e-9 * (1.0 + serial.abs()));
    }
}

#[test]
fn masked_sum_only_counts_active() {
    let mut rng = ChaCha8Rng::seed_from_u64(106);
    for _ in 0..CASES {
        let (a, m) = (lanes(&mut rng), mask_lanes(&mut rng));
        let v = SimdF::<f64, W>::from_array(a);
        let serial: f64 = a
            .iter()
            .zip(m.iter())
            .filter(|(_, &b)| b)
            .map(|(x, _)| x)
            .sum();
        assert!((v.masked_sum(SimdM::from_array(m)) - serial).abs() <= 1e-9 * (1.0 + serial.abs()));
    }
}

#[test]
fn sum_slice_matches_serial() {
    let mut rng = ChaCha8Rng::seed_from_u64(107);
    for _ in 0..CASES {
        let len = rng.gen_range(0usize..200);
        let data: Vec<f64> = (0..len).map(|_| rng.gen_range(-1.0e3..1.0e3)).collect();
        let serial: f64 = data.iter().sum();
        let tol = 1e-9 * (1.0 + serial.abs());
        assert!((sum_slice::<f64, 4>(&data) - serial).abs() <= tol);
        assert!((sum_slice::<f64, 16>(&data) - serial).abs() <= tol);
    }
}

#[test]
fn kahan_matches_exact_on_f64() {
    let mut rng = ChaCha8Rng::seed_from_u64(108);
    for _ in 0..CASES {
        let len = rng.gen_range(0usize..100);
        let data: Vec<f64> = (0..len).map(|_| rng.gen_range(-1.0e6..1.0e6)).collect();
        let mut k = KahanSum::<f64>::new();
        for &x in &data {
            k.add(x);
        }
        let serial: f64 = data.iter().sum();
        assert!((k.value() - serial).abs() <= 1e-6 * (1.0 + serial.abs()));
    }
}

#[test]
fn conflict_detect_scatter_matches_serialized() {
    let mut rng = ChaCha8Rng::seed_from_u64(109);
    for _ in 0..CASES {
        let idx: [usize; W] = std::array::from_fn(|_| rng.gen_range(0usize..6));
        let m = mask_lanes(&mut rng);
        let mask = SimdM::from_array(m);
        let vals = [
            SimdF::<f64, W>::from_array(lanes(&mut rng)),
            SimdF::<f64, W>::from_array(lanes(&mut rng)),
            SimdF::<f64, W>::from_array(lanes(&mut rng)),
        ];
        let mut serial = vec![0.0f64; 18];
        scatter_add3::<f64, W, 3>(&mut serial, &idx, mask, vals);

        let mut cd = vec![0.0f64; 18];
        let idx_i: [i64; W] = std::array::from_fn(|i| idx[i] as i64);
        scatter_add3_conflict_detect::<f64, W, 3>(&mut cd, SimdI::from_array(idx_i), mask, vals);

        for i in 0..18 {
            assert!(
                (serial[i] - cd[i]).abs() <= 1e-9 * (1.0 + serial[i].abs()),
                "slot {}: serial {} vs cd {}",
                i,
                serial[i],
                cd[i]
            );
        }
    }
}

#[test]
fn adjacent_gather3_matches_direct_indexing() {
    let mut rng = ChaCha8Rng::seed_from_u64(110);
    let buf: Vec<f64> = (0..30).map(|i| i as f64 * 0.5).collect();
    for _ in 0..CASES {
        let idx: [usize; W] = std::array::from_fn(|_| rng.gen_range(0usize..10));
        let m = mask_lanes(&mut rng);
        let [x, y, z] = adjacent_gather3::<f64, W, 3>(&buf, &idx, SimdM::from_array(m));
        for lane in 0..W {
            if m[lane] {
                assert_eq!(x.lane(lane), buf[idx[lane] * 3]);
                assert_eq!(y.lane(lane), buf[idx[lane] * 3 + 1]);
                assert_eq!(z.lane(lane), buf[idx[lane] * 3 + 2]);
            } else {
                assert_eq!(x.lane(lane), 0.0);
            }
        }
    }
}

#[test]
fn adjacent_gather_n_matches_direct_indexing() {
    let mut rng = ChaCha8Rng::seed_from_u64(111);
    let buf: Vec<f64> = (0..20).map(|i| (i * i) as f64).collect();
    for _ in 0..CASES {
        let idx: [usize; W] = std::array::from_fn(|_| rng.gen_range(0usize..5));
        let fields = adjacent_gather_n::<f64, W, 4>(&buf, &idx, SimdM::all_true());
        for lane in 0..W {
            for (f, field) in fields.iter().enumerate() {
                assert_eq!(field.lane(lane), buf[idx[lane] * 4 + f]);
            }
        }
    }
}

#[test]
fn fast_exp_relative_error_bounded() {
    let mut rng = ChaCha8Rng::seed_from_u64(112);
    for _ in 0..4 * CASES {
        let x = rng.gen_range(-69.0..69.0);
        let approx = fast_exp_scalar::<f64>(x);
        let exact = x.exp();
        assert!(
            ((approx - exact) / exact).abs() < 5e-6,
            "x = {x}: {approx} vs {exact}"
        );
    }
}

#[test]
fn fast_sin_error_bounded() {
    let mut rng = ChaCha8Rng::seed_from_u64(113);
    let lim = std::f64::consts::FRAC_PI_2 - 1e-4;
    for _ in 0..4 * CASES {
        let x = rng.gen_range(-lim..lim);
        assert!(
            (fast_sin_halfpi_scalar::<f64>(x) - x.sin()).abs() < 1e-5,
            "x = {x}"
        );
    }
}

#[test]
fn conflict_mask_is_sound() {
    let mut rng = ChaCha8Rng::seed_from_u64(114);
    for _ in 0..CASES {
        let idx: [i64; W] = std::array::from_fn(|_| rng.gen_range(0i64..4));
        // Every lane flagged as conflicting must indeed have an earlier lane
        // with the same index; unflagged active lanes must be first
        // occurrences.
        let conflicts = SimdI::<W>::from_array(idx).conflict_mask(SimdM::all_true());
        for lane in 0..W {
            let has_earlier_dup = (0..lane).any(|j| idx[j] == idx[lane]);
            assert_eq!(conflicts.lane(lane), has_earlier_dup);
        }
    }
}
