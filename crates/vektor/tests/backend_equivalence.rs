//! Randomized bit-for-bit equivalence of the intrinsic back-ends against the
//! portable array implementation.
//!
//! Two layers:
//!
//! 1. **Direct trait calls** — every dispatched [`SimdBackend`] operation is
//!    compared lane-by-lane against [`PortableBackend`] for both element
//!    types at widths 1–32 (including widths with no hardware coverage,
//!    which must fall back identically).
//! 2. **Trampolined kernel instances** — a full module-surface pass
//!    (`gather.rs` `_in` functions, `conflict.rs`, `reduce.rs`, the backend
//!    trait ops a real kernel uses) written generically over
//!    `B: SimdBackend`, monomorphized through
//!    [`vektor::dispatch::run_kernel`] exactly like the Tersoff kernels,
//!    and compared bitwise against the portable instance. This is what
//!    per-op wrapper tests cannot see: the whole body compiled inside the
//!    `#[target_feature]` entry point.
//!
//! Equivalence is **bit-for-bit** for every operation: data movement is
//! exact, both `mul_add` paths fuse, and the intrinsic horizontal sums
//! reproduce the portable pairwise association. (No approximate rsqrt/exp
//! instructions are used by any backend, so no ULP-bound carve-outs are
//! needed; `math.rs`'s `fast_*` functions are backend-independent scalar
//! polynomials.)

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::marker::PhantomData;
use std::sync::Mutex;
use vektor::conflict::{
    reduce_add3_uniform, reduce_add_uniform, scatter_add, scatter_add3,
    scatter_add3_conflict_detect,
};
use vektor::dispatch::{self, BackendImpl, KernelBody};
use vektor::gather::{
    adjacent_gather3_in, adjacent_gather_n_in, adjacent_scatter3, adjacent_scatter_add3_distinct_in,
};
use vektor::reduce::{reduce3, sum_slice, KahanSum, VectorAccumulator};
use vektor::{PortableBackend, Real, SimdBackend, SimdF, SimdI, SimdM};

const CASES: usize = 96;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

fn buffer<T: Real>(rng: &mut ChaCha8Rng, n: usize) -> Vec<T> {
    (0..n)
        .map(|_| T::from_f64(rng.gen_range(-1.0e3..1.0e3)))
        .collect()
}

fn lanes<T: Real, const W: usize>(rng: &mut ChaCha8Rng) -> SimdF<T, W> {
    SimdF::from_fn(|_| T::from_f64(rng.gen_range(-1.0e3..1.0e3)))
}

fn indices<const W: usize>(rng: &mut ChaCha8Rng, n: usize) -> [usize; W] {
    std::array::from_fn(|_| rng.gen_range(0..n as i64) as usize)
}

/// Pairwise-distinct indices (one slot per lane), as the conflict-free
/// scatter requires.
fn distinct_indices<const W: usize>(rng: &mut ChaCha8Rng, n: usize) -> [usize; W] {
    let slot = (n / W).max(1);
    std::array::from_fn(|lane| lane * slot + rng.gen_range(0..slot as i64) as usize)
}

fn mask<const W: usize>(rng: &mut ChaCha8Rng) -> SimdM<W> {
    SimdM::from_array(std::array::from_fn(|_| rng.gen_bool(0.5)))
}

#[track_caller]
fn assert_lane_bits<T: Real, const W: usize>(a: SimdF<T, W>, b: SimdF<T, W>, what: &str) {
    for lane in 0..W {
        assert_eq!(
            a.lane(lane).to_f64().to_bits(),
            b.lane(lane).to_f64().to_bits(),
            "{what}: lane {lane} differs: {} vs {}",
            a.lane(lane),
            b.lane(lane)
        );
    }
}

#[track_caller]
fn assert_slice_bits<T: Real>(a: &[T], b: &[T], what: &str) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(
            x.to_f64().to_bits(),
            y.to_f64().to_bits(),
            "{what}: element {i} differs: {x} vs {y}"
        );
    }
}

// ---------------------------------------------------------------------------
// Layer 1: direct trait calls, backend vs portable
// ---------------------------------------------------------------------------

fn check_trait_ops<B: SimdBackend, T: Real, const W: usize>(seed: u64) {
    let mut r = rng(seed ^ (W as u64) << 8);
    let n = 192usize;
    for _ in 0..CASES {
        let buf: Vec<T> = buffer(&mut r, n);
        let m: SimdM<W> = mask(&mut r);
        let fill = T::from_f64(r.gen_range(-10.0..10.0));
        let offset = r.gen_range(0..(n - W) as i64) as usize;

        // load / store round-trip.
        let loaded: SimdF<T, W> = B::load(&buf, offset);
        assert_lane_bits(loaded, PortableBackend::load(&buf, offset), "load");
        let mut out_a = buf.clone();
        let mut out_b = buf.clone();
        B::store(loaded, &mut out_a, offset / 2);
        PortableBackend::store(loaded, &mut out_b, offset / 2);
        assert_slice_bits(&out_a, &out_b, "store");

        // store_masked.
        let v: SimdF<T, W> = lanes(&mut r);
        B::store_masked(v, &mut out_a, offset, m);
        PortableBackend::store_masked(v, &mut out_b, offset, m);
        assert_slice_bits(&out_a, &out_b, "store_masked");

        // gather; masked gather with wild inactive indices.
        let id: [usize; W] = indices(&mut r, n);
        assert_lane_bits(
            B::gather(&buf, &id),
            PortableBackend::gather(&buf, &id),
            "gather",
        );
        let mut wild = id;
        for (lane, w) in wild.iter_mut().enumerate() {
            if !m.lane(lane) {
                *w = usize::MAX / 2;
            }
        }
        assert_lane_bits(
            B::gather_masked(&buf, &wild, m, fill),
            PortableBackend::gather_masked(&buf, &wild, m, fill),
            "gather_masked",
        );

        // select / mul_add / horizontal_sum.
        let a: SimdF<T, W> = lanes(&mut r);
        let b: SimdF<T, W> = lanes(&mut r);
        let c: SimdF<T, W> = lanes(&mut r);
        assert_lane_bits(
            B::select(m, a, b),
            PortableBackend::select(m, a, b),
            "select",
        );
        assert_lane_bits(
            B::mul_add(a, b, c),
            PortableBackend::mul_add(a, b, c),
            "mul_add",
        );
        assert_eq!(
            B::horizontal_sum(a).to_f64().to_bits(),
            PortableBackend::horizontal_sum(a).to_f64().to_bits(),
            "horizontal_sum differs"
        );

        // Adjacent gathers (position stride 4 and record width 5).
        let id4: [usize; W] = indices(&mut r, n / 4);
        let ga = B::adjacent_gather3::<T, W, 4>(&buf, &id4, m);
        let gb = PortableBackend::adjacent_gather3::<T, W, 4>(&buf, &id4, m);
        for d in 0..3 {
            assert_lane_bits(ga[d], gb[d], "adjacent_gather3");
        }
        let id5: [usize; W] = indices(&mut r, n / 5);
        let na = B::adjacent_gather_n::<T, W, 5>(&buf, &id5, m);
        let nb = PortableBackend::adjacent_gather_n::<T, W, 5>(&buf, &id5, m);
        for d in 0..5 {
            assert_lane_bits(na[d], nb[d], "adjacent_gather_n");
        }

        // Conflict-free scatter (distinct targets).
        let idd: [usize; W] = distinct_indices(&mut r, n / 3);
        let vals = [lanes::<T, W>(&mut r), lanes(&mut r), lanes(&mut r)];
        let mut sa = buf.clone();
        let mut sb = buf.clone();
        B::scatter_add3_distinct::<T, W, 3>(&mut sa, &idd, m, vals);
        PortableBackend::scatter_add3_distinct::<T, W, 3>(&mut sb, &idd, m, vals);
        assert_slice_bits(&sa, &sb, "scatter_add3_distinct");
    }
}

fn check_trait_ops_all_widths<B: SimdBackend>(seed: u64) {
    check_trait_ops::<B, f64, 1>(seed);
    check_trait_ops::<B, f64, 2>(seed);
    check_trait_ops::<B, f64, 3>(seed);
    check_trait_ops::<B, f64, 4>(seed);
    check_trait_ops::<B, f64, 8>(seed);
    check_trait_ops::<B, f64, 16>(seed);
    check_trait_ops::<B, f64, 32>(seed);
    check_trait_ops::<B, f32, 1>(seed);
    check_trait_ops::<B, f32, 2>(seed);
    check_trait_ops::<B, f32, 4>(seed);
    check_trait_ops::<B, f32, 8>(seed);
    check_trait_ops::<B, f32, 16>(seed);
    check_trait_ops::<B, f32, 32>(seed);
}

#[test]
fn portable_trait_is_self_consistent() {
    check_trait_ops_all_widths::<PortableBackend>(11);
}

#[cfg(target_arch = "x86_64")]
#[test]
fn avx2_matches_portable_bit_for_bit() {
    if !dispatch::supported(BackendImpl::Avx2) {
        eprintln!("skipping: avx2+fma not available on this host");
        return;
    }
    check_trait_ops_all_widths::<vektor::Avx2Backend>(23);
}

#[cfg(target_arch = "x86_64")]
#[test]
fn avx512_matches_portable_bit_for_bit() {
    if !dispatch::supported(BackendImpl::Avx512) {
        eprintln!("skipping: avx512f not available on this host");
        return;
    }
    check_trait_ops_all_widths::<vektor::Avx512Backend>(37);
}

// ---------------------------------------------------------------------------
// Layer 2: trampolined kernel instances — the whole module surface as one
// kernel body, monomorphized per backend through dispatch::run_kernel
// ---------------------------------------------------------------------------

fn supported_backends() -> Vec<BackendImpl> {
    BackendImpl::ALL
        .into_iter()
        .filter(|&b| dispatch::supported(b))
        .collect()
}

/// One full pass over the kernel-facing module surface with an explicit
/// backend, returning every produced number so instances monomorphized for
/// different backends can be compared bitwise. `#[inline(always)]` so the
/// pass genuinely compiles inside the trampoline's `#[target_feature]`
/// entry function, exactly like a production kernel body.
#[inline(always)]
fn kernel_instance_pass<B: SimdBackend, T: Real, const W: usize>(seed: u64) -> Vec<f64> {
    let mut r = rng(seed);
    let mut trace: Vec<f64> = Vec::new();
    let n = 120usize;
    for _ in 0..CASES / 2 {
        let buf: Vec<T> = buffer(&mut r, n);
        let m: SimdM<W> = mask(&mut r);

        // gather.rs surface (the `_in` forms the kernels call).
        let id4: [usize; W] = indices(&mut r, n / 4);
        let [x, y, z] = adjacent_gather3_in::<B, T, W, 4>(&buf, &id4, m);
        trace.extend(x.to_f64_array());
        trace.extend(y.to_f64_array());
        trace.extend(z.to_f64_array());
        let id2: [usize; W] = indices(&mut r, n / 2);
        let rec = adjacent_gather_n_in::<B, T, W, 2>(&buf, &id2, m);
        trace.extend(rec[0].to_f64_array());
        trace.extend(rec[1].to_f64_array());

        let mut scatter_buf = buf.clone();
        let idd: [usize; W] = distinct_indices(&mut r, n / 3);
        let vals = [lanes::<T, W>(&mut r), lanes(&mut r), lanes(&mut r)];
        adjacent_scatter3::<T, W, 3>(&mut scatter_buf, &idd, m, vals);
        adjacent_scatter_add3_distinct_in::<B, T, W, 3>(&mut scatter_buf, &idd, m, vals);
        trace.extend(scatter_buf.iter().map(|v| v.to_f64()));

        // conflict.rs surface (conflicting indices allowed; serialized
        // accumulation is ordering-defined, hence backend-independent, but
        // it compiles inside the same target_feature body as everything
        // else and must stay bitwise).
        let idc: [usize; W] = indices(&mut r, n / 3);
        let mut target = buf.clone();
        scatter_add::<T, W>(&mut target, &idc, m, vals[0]);
        scatter_add3::<T, W, 3>(&mut target, &idc, m, vals);
        let idc_vec = SimdI::from_usize_array(idc);
        scatter_add3_conflict_detect::<T, W, 3>(&mut target, idc_vec, m, vals);
        trace.extend(target.iter().map(|v| v.to_f64()));
        let mut uniform = T::ZERO;
        reduce_add_uniform(&mut uniform, m, vals[1]);
        trace.push(uniform.to_f64());
        let mut uniform3 = [T::ZERO; 3];
        reduce_add3_uniform(&mut uniform3, m, vals);
        trace.extend(uniform3.iter().map(|v| v.to_f64()));

        // reduce.rs surface.
        let mut kahan = KahanSum::<T>::new();
        kahan.add_vector(vals[0], m);
        kahan.add_vector(vals[1], !m);
        trace.push(kahan.value().to_f64());
        let mut acc = VectorAccumulator::<T, W>::new();
        acc.add(vals[0], m);
        acc.add_all(vals[2]);
        trace.push(acc.reduce().to_f64());
        trace.push(acc.reduce_f64());
        trace.extend(reduce3(vals, m).iter().map(|v| v.to_f64()));
        trace.push(sum_slice::<T, W>(&buf).to_f64());

        // Backend trait ops the way a kernel body calls them.
        let a: SimdF<T, W> = lanes(&mut r);
        let b: SimdF<T, W> = lanes(&mut r);
        let c: SimdF<T, W> = lanes(&mut r);
        trace.push(B::horizontal_sum(a).to_f64());
        trace.push(B::masked_sum(a, m).to_f64());
        trace.extend(B::select(m, a, b).to_f64_array());
        trace.extend(B::mul_add(a, b, c).to_f64_array());
        trace.extend(B::masked(a, m).to_f64_array());
        let id: [usize; W] = indices(&mut r, n);
        trace.extend(B::gather(&buf, &id).to_f64_array());
        let mut st = buf.clone();
        B::store_masked(a, &mut st, 0, m);
        trace.extend(st.iter().map(|v| v.to_f64()));

        // mask.rs surface: scalar bool semantics, backend-independent by
        // construction but part of the audited module set.
        let m2: SimdM<W> = mask(&mut r);
        for v in [
            m.all() as u64,
            m.any() as u64,
            m.none() as u64,
            m.count() as u64,
            (m & m2).count() as u64,
            (m | m2).count() as u64,
            (m ^ m2).count() as u64,
            (!m).count() as u64,
            m.and_not(m2).count() as u64,
            m.first_set().map_or(u64::MAX, |x| x as u64),
        ] {
            trace.push(v as f64);
        }
    }
    trace
}

/// The [`KernelBody`] adapter: what the Tersoff kernels do with their atom
/// loops, done here with the synthetic module pass.
struct ModulePass<T: Real, const W: usize> {
    seed: u64,
    _elem: PhantomData<T>,
}

impl<T: Real, const W: usize> KernelBody for ModulePass<T, W> {
    type Output = Vec<f64>;

    #[inline(always)]
    fn run<B: SimdBackend>(self) -> Vec<f64> {
        kernel_instance_pass::<B, T, W>(self.seed)
    }
}

fn pass_instance<T: Real, const W: usize>(backend: BackendImpl, seed: u64) -> Vec<f64> {
    dispatch::run_kernel(
        backend,
        ModulePass::<T, W> {
            seed,
            _elem: PhantomData,
        },
    )
}

fn check_kernel_instance_equivalence<T: Real, const W: usize>(seed: u64) {
    let reference = pass_instance::<T, W>(BackendImpl::Portable, seed);
    for backend in supported_backends() {
        let got = pass_instance::<T, W>(backend, seed);
        assert_eq!(reference.len(), got.len());
        for (i, (a, b)) in reference.iter().zip(got.iter()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "kernel instance trace diverges under {backend} at position {i}: {a} vs {b} \
                 (T = {}, W = {W})",
                std::any::type_name::<T>()
            );
        }
    }
}

#[test]
fn kernel_instances_are_backend_invariant_f64() {
    check_kernel_instance_equivalence::<f64, 1>(41);
    check_kernel_instance_equivalence::<f64, 4>(42);
    check_kernel_instance_equivalence::<f64, 8>(43);
    check_kernel_instance_equivalence::<f64, 16>(44);
    check_kernel_instance_equivalence::<f64, 32>(45);
}

#[test]
fn kernel_instances_are_backend_invariant_f32() {
    check_kernel_instance_equivalence::<f32, 1>(51);
    check_kernel_instance_equivalence::<f32, 4>(52);
    check_kernel_instance_equivalence::<f32, 8>(53);
    check_kernel_instance_equivalence::<f32, 16>(54);
    check_kernel_instance_equivalence::<f32, 32>(55);
}

// ---------------------------------------------------------------------------
// Dispatch selection: VEKTOR_BACKEND → kernel instance
// ---------------------------------------------------------------------------

/// Serializes the tests that mutate the process environment.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_env_backend<R>(value: Option<&str>, f: impl FnOnce() -> R) -> R {
    let guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let previous = std::env::var("VEKTOR_BACKEND").ok();
    match value {
        Some(v) => std::env::set_var("VEKTOR_BACKEND", v),
        None => std::env::remove_var("VEKTOR_BACKEND"),
    }
    let result = f();
    match previous {
        Some(v) => std::env::set_var("VEKTOR_BACKEND", v),
        None => std::env::remove_var("VEKTOR_BACKEND"),
    }
    drop(guard);
    result
}

#[test]
fn env_request_selects_the_kernel_instance() {
    // A recognized value picks that implementation (clamped to host
    // support) — verified end-to-end: the selected instance actually runs.
    let observed = |backend| dispatch::run_kernel(backend, NameProbe);
    for (value, expected) in [
        ("portable", BackendImpl::Portable),
        ("avx2", dispatch::clamp(BackendImpl::Avx2)),
        ("avx512", dispatch::clamp(BackendImpl::Avx512)),
    ] {
        let selected = with_env_backend(Some(value), dispatch::default_backend);
        assert_eq!(
            selected,
            dispatch::clamp(expected),
            "VEKTOR_BACKEND={value}"
        );
        assert_eq!(observed(selected), selected.name());
    }
    // "auto", empty, and unset all mean: detect the widest supported.
    for value in [Some("auto"), Some(""), None] {
        let selected = with_env_backend(value, dispatch::default_backend);
        assert_eq!(
            selected,
            dispatch::detect_best(),
            "VEKTOR_BACKEND={value:?}"
        );
    }
    // Unknown values warn (once, on stderr) and fall back to detection.
    let selected = with_env_backend(Some("definitely-not-an-isa"), dispatch::default_backend);
    assert_eq!(selected, dispatch::detect_best());
    // Driver-level requests override the environment.
    let forced = with_env_backend(Some("avx512"), || {
        dispatch::resolve(Some(BackendImpl::Portable))
    });
    assert_eq!(forced, BackendImpl::Portable);
}

/// Kernel that just reports which backend instance it was monomorphized
/// with.
struct NameProbe;

impl KernelBody for NameProbe {
    type Output = &'static str;

    #[inline(always)]
    fn run<B: SimdBackend>(self) -> &'static str {
        B::name()
    }
}

#[test]
fn run_kernel_clamps_unsupported_requests() {
    for b in BackendImpl::ALL {
        let ran = dispatch::run_kernel(b, NameProbe);
        assert_eq!(ran, dispatch::clamp(b).name());
        assert!(dispatch::supported(BackendImpl::parse(ran).unwrap()));
    }
}
