//! The analytic cost model used to project the paper's cross-architecture
//! figures.
//!
//! The model deliberately has very few knobs. Per MD step the Tersoff kernel
//! performs `n_atoms × n_neigh × (pair work + 2 × n_neigh × ζ work)`
//! floating-point-equivalent operations. A machine executes these at
//! `cores × GHz × core_efficiency` scalar operations per second; optimized
//! code gains a scalar-optimization factor (Algorithm 3, better parameter
//! lookup) and a vectorization factor that grows sub-linearly with the
//! effective lane count (gather/serialization/masking overheads eat part of
//! the width — the `(lanes)^0.55` law is fitted to the per-ISA speedups the
//! paper reports and is documented in EXPERIMENTS.md). Full-node and cluster
//! projections add the communication fractions the paper quotes (5–30%) and
//! a surface-to-volume term for strong scaling.

use crate::machines::{Isa, Machine};
use serde::{Deserialize, Serialize};

/// The four execution modes of the paper (Sec. V-E).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mode {
    /// LAMMPS reference, double precision, scalar.
    Ref,
    /// Optimized, double precision.
    OptD,
    /// Optimized, single precision.
    OptS,
    /// Optimized, mixed precision.
    OptM,
}

impl Mode {
    /// All modes in reporting order.
    pub const ALL: [Mode; 4] = [Mode::Ref, Mode::OptD, Mode::OptS, Mode::OptM];

    /// Paper-style label.
    pub fn label(&self) -> &'static str {
        match self {
            Mode::Ref => "Ref",
            Mode::OptD => "Opt-D",
            Mode::OptS => "Opt-S",
            Mode::OptM => "Opt-M",
        }
    }

    /// Does the mode compute in single precision?
    pub fn single_precision(&self) -> bool {
        matches!(self, Mode::OptS | Mode::OptM)
    }
}

/// The workload being projected (the silicon benchmark at some size).
#[derive(Copy, Clone, Debug, Serialize, Deserialize)]
pub struct WorkloadShape {
    /// Number of atoms.
    pub n_atoms: usize,
    /// In-cutoff neighbors per atom (4 for crystalline silicon).
    pub neighbors_per_atom: f64,
    /// Timestep in picoseconds.
    pub timestep_ps: f64,
}

impl WorkloadShape {
    /// The silicon benchmark at `n_atoms` atoms (4 neighbors, 1 fs timestep).
    pub fn silicon(n_atoms: usize) -> Self {
        WorkloadShape {
            n_atoms,
            neighbors_per_atom: 4.0,
            timestep_ps: 0.001,
        }
    }

    /// Flop-equivalents of optimized code per MD step.
    pub fn work_per_step(&self, model: &CostModel) -> f64 {
        let per_pair = model.flops_per_pair + 2.0 * self.neighbors_per_atom * model.flops_per_zeta;
        self.n_atoms as f64 * self.neighbors_per_atom * per_pair
    }
}

/// A single projected data point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Projection {
    /// Machine name.
    pub machine: String,
    /// Execution mode label.
    pub mode: String,
    /// Projected throughput in ns/day.
    pub ns_per_day: f64,
}

/// Tunable constants of the cost model.
#[derive(Copy, Clone, Debug, Serialize, Deserialize)]
pub struct CostModel {
    /// Flop-equivalents of the pair-level kernel (repulsive + bond order).
    pub flops_per_pair: f64,
    /// Flop-equivalents of one ζ term (per K iteration, per pass).
    pub flops_per_zeta: f64,
    /// Extra work factor of the unoptimized reference (redundant ζ
    /// recomputation, parameter indirection).
    pub ref_overhead: f64,
    /// Additional throughput factor of the reduced-precision math library
    /// (the "lower accuracy math functions" of Sec. VI-A).
    pub fast_math_bonus: f64,
    /// Exponent of the effective-lane speedup law.
    pub vector_exponent: f64,
    /// Penalty on effective lanes when the ISA lacks integer vectors but the
    /// fused scheme (1b) needs them (AVX).
    pub no_int_vector_penalty: f64,
    /// Penalty on effective lanes when gathers must be emulated.
    pub no_gather_penalty: f64,
    /// Communication fraction of a full-node run (the paper quotes 5–30%).
    pub node_comm_fraction: f64,
    /// Additional per-node offload overhead fraction when accelerators are
    /// used through the offload path.
    pub offload_overhead: f64,
    /// Cluster latency term: fraction of step time added per doubling of the
    /// node count.
    pub cluster_latency_fraction: f64,
    /// Pair-level lane occupancy of the warp scheme on the GPU (the
    /// divergence the paper describes).
    pub warp_occupancy_opt: f64,
    /// Effective occupancy of the unoptimized GPU port (up to "95% of the
    /// threads in a warp might be inactive").
    pub warp_occupancy_ref: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            flops_per_pair: 260.0,
            flops_per_zeta: 160.0,
            ref_overhead: 1.9,
            fast_math_bonus: 1.1,
            vector_exponent: 0.45,
            no_int_vector_penalty: 0.5,
            no_gather_penalty: 0.85,
            node_comm_fraction: 0.06,
            offload_overhead: 0.12,
            cluster_latency_fraction: 0.003,
            warp_occupancy_opt: 0.55,
            warp_occupancy_ref: 0.12,
        }
    }
}

impl CostModel {
    /// The vector width the paper's implementation would pick for this
    /// ISA/mode combination (Sec. VI-A footnotes): double precision uses
    /// scheme 1a on 4-lane ISAs and scheme 1b on wider ones; SSE double and
    /// NEON double fall back to optimized scalar code.
    pub fn chosen_lanes(&self, isa: Isa, mode: Mode) -> usize {
        match mode {
            Mode::Ref => 1,
            Mode::OptD => {
                let lanes = isa.lanes_double();
                if lanes < 4 {
                    1
                } else {
                    lanes
                }
            }
            Mode::OptS | Mode::OptM => isa.lanes_single(),
        }
    }

    /// Effective speedup of vectorization over optimized scalar code for the
    /// given ISA/mode (the `(effective lanes)^exponent` law with per-ISA
    /// feature penalties).
    pub fn vector_speedup(&self, isa: Isa, mode: Mode) -> f64 {
        let lanes = self.chosen_lanes(isa, mode) as f64;
        if lanes <= 1.0 {
            return 1.0;
        }
        let mut effective = lanes;
        // Scheme (1b) is only needed when the vector is longer than the
        // neighbor list; its index manipulation wants integer vectors.
        if lanes > 4.0 && !isa.has_int_vectors() {
            effective *= self.no_int_vector_penalty;
        }
        if !isa.has_gather() {
            effective *= self.no_gather_penalty;
        }
        if isa == Isa::Cuda {
            effective *= self.warp_occupancy_opt;
        }
        effective.max(1.0).powf(self.vector_exponent)
    }

    /// Speedup of the optimized code over the reference on one core
    /// (scalar optimizations × fast math × vectorization).
    pub fn kernel_speedup(&self, isa: Isa, mode: Mode) -> f64 {
        match mode {
            Mode::Ref => 1.0,
            _ => {
                let fast_math = if mode.single_precision() {
                    self.fast_math_bonus
                } else {
                    1.0
                };
                self.ref_overhead * fast_math * self.vector_speedup(isa, mode)
            }
        }
    }

    /// ns/day of a single-threaded run on the host CPU of `machine`.
    pub fn single_thread_ns_per_day(
        &self,
        machine: &Machine,
        mode: Mode,
        workload: &WorkloadShape,
    ) -> f64 {
        let work = workload.work_per_step(self) * self.ref_overhead;
        let scalar_rate = machine.freq_ghz * 1e9 * machine.core_efficiency;
        let rate = scalar_rate * self.kernel_speedup(machine.isa, mode);
        let seconds_per_step = work / rate;
        ns_per_day(workload.timestep_ps, seconds_per_step)
    }

    /// ns/day of a full-node run on the host CPU (all cores, MPI), including
    /// the communication fraction.
    pub fn node_ns_per_day(&self, machine: &Machine, mode: Mode, workload: &WorkloadShape) -> f64 {
        let work = workload.work_per_step(self) * self.ref_overhead;
        let scalar_rate = machine.cores as f64 * machine.freq_ghz * 1e9 * machine.core_efficiency;
        let compute = work / (scalar_rate * self.kernel_speedup(machine.isa, mode));
        // Communication does not shrink with the kernel optimizations; its
        // absolute cost is a fraction of the *reference* step time.
        let reference_step = work / scalar_rate;
        let comm = reference_step * self.node_comm_fraction;
        ns_per_day(workload.timestep_ps, compute + comm)
    }

    /// Aggregate accelerator scalar rate of a machine (0 when none).
    fn accelerator_rate(&self, machine: &Machine) -> f64 {
        machine
            .accelerator
            .map(|acc| {
                acc.count as f64 * acc.cores as f64 * acc.freq_ghz * 1e9 * acc.core_efficiency
            })
            .unwrap_or(0.0)
    }

    /// ns/day of an accelerated node (host + accelerator share the work, as
    /// in the USER-INTEL offload mode), including offload overhead.
    pub fn accelerated_node_ns_per_day(
        &self,
        machine: &Machine,
        mode: Mode,
        workload: &WorkloadShape,
    ) -> f64 {
        let work = workload.work_per_step(self) * self.ref_overhead;
        let host_rate = machine.cores as f64
            * machine.freq_ghz
            * 1e9
            * machine.core_efficiency
            * self.kernel_speedup(machine.isa, mode);
        let acc_isa = machine.accelerator.map(|a| a.isa);
        let acc_rate = self.accelerator_rate(machine)
            * acc_isa
                .map(|isa| self.kernel_speedup(isa, mode))
                .unwrap_or(1.0);
        let combined = host_rate + acc_rate;
        let reference_step =
            work / (machine.cores as f64 * machine.freq_ghz * 1e9 * machine.core_efficiency);
        let comm = reference_step * self.node_comm_fraction;
        let offload = if machine.accelerator.is_some() {
            work / combined * self.offload_overhead
        } else {
            0.0
        };
        ns_per_day(workload.timestep_ps, work / combined + comm + offload)
    }

    /// ns/day of a GPU-offload run where the device does all force work
    /// (Fig. 6). `optimized` selects the paper's Opt-KK-D versus the
    /// reference GPU ports; the difference is dominated by warp occupancy.
    pub fn gpu_ns_per_day(
        &self,
        machine: &Machine,
        optimized: bool,
        single_precision: bool,
        workload: &WorkloadShape,
    ) -> f64 {
        let acc = machine
            .accelerator
            .expect("gpu_ns_per_day requires an accelerated machine");
        let work = workload.work_per_step(self) * self.ref_overhead;
        let occupancy = if optimized {
            self.warp_occupancy_opt
        } else {
            self.warp_occupancy_ref
        };
        // Kepler double-precision throughput is 1/3 of single precision.
        let precision_rate = if single_precision { 1.0 } else { 1.0 / 3.0 };
        let warp_lanes = 32.0 * occupancy;
        let scalar_opt = if optimized { self.ref_overhead } else { 1.0 };
        let rate = acc.count as f64
            * acc.cores as f64
            * acc.freq_ghz
            * 1e9
            * acc.core_efficiency
            * precision_rate
            * scalar_opt
            * warp_lanes.powf(self.vector_exponent);
        let seconds = work / rate
            + work / (machine.cores as f64 * machine.freq_ghz * 1e9 * machine.core_efficiency)
                * self.offload_overhead;
        ns_per_day(workload.timestep_ps, seconds)
    }

    /// ns/day of a strong-scaling run over `n_nodes` identical nodes
    /// (Fig. 9): per-node work shrinks linearly, the communicated surface
    /// shrinks only with the 2/3 power, and a latency term grows with the
    /// node count.
    pub fn cluster_ns_per_day(
        &self,
        node: &Machine,
        mode: Mode,
        use_accelerators: bool,
        n_nodes: usize,
        workload: &WorkloadShape,
    ) -> f64 {
        assert!(n_nodes >= 1);
        let per_node = WorkloadShape {
            n_atoms: workload.n_atoms / n_nodes,
            ..*workload
        };
        let work = per_node.work_per_step(self) * self.ref_overhead;
        let host_rate = node.cores as f64
            * node.freq_ghz
            * 1e9
            * node.core_efficiency
            * self.kernel_speedup(node.isa, mode);
        let acc_rate = if use_accelerators {
            self.accelerator_rate(node)
                * node
                    .accelerator
                    .map(|a| self.kernel_speedup(a.isa, mode))
                    .unwrap_or(1.0)
        } else {
            0.0
        };
        let compute = work / (host_rate + acc_rate);

        // Communication: proportional to the per-node *surface* of the domain
        // (ghost exchange) plus a latency floor that grows with node count.
        let reference_node_step = (workload.work_per_step(self) * self.ref_overhead)
            / (node.cores as f64 * node.freq_ghz * 1e9 * node.core_efficiency);
        let surface = (1.0 / n_nodes as f64).powf(2.0 / 3.0);
        let comm = reference_node_step
            * (self.node_comm_fraction * surface
                + self.cluster_latency_fraction * (n_nodes as f64).log2());
        let offload = if use_accelerators && node.accelerator.is_some() {
            compute * self.offload_overhead
        } else {
            0.0
        };
        ns_per_day(workload.timestep_ps, compute + comm + offload)
    }

    /// Convenience: project a set of modes on a set of machines
    /// (single-thread variant, Fig. 4).
    pub fn project_single_thread(
        &self,
        machines: &[Machine],
        modes: &[Mode],
        workload: &WorkloadShape,
    ) -> Vec<Projection> {
        let mut out = Vec::new();
        for m in machines {
            for &mode in modes {
                out.push(Projection {
                    machine: m.name.to_string(),
                    mode: mode.label().to_string(),
                    ns_per_day: self.single_thread_ns_per_day(m, mode, workload),
                });
            }
        }
        out
    }
}

/// ns/day from a timestep (ps) and seconds of wall-clock per step.
pub fn ns_per_day(timestep_ps: f64, seconds_per_step: f64) -> f64 {
    if seconds_per_step <= 0.0 {
        return f64::INFINITY;
    }
    86_400.0 / seconds_per_step * timestep_ps * 1e-3
}

/// Configuration of a cluster projection (Fig. 9).
#[derive(Copy, Clone, Debug, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of nodes.
    pub n_nodes: usize,
    /// Whether the per-node accelerators participate.
    pub use_accelerators: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines::Machine;

    fn model() -> CostModel {
        CostModel::default()
    }

    fn st(machine: &Machine, mode: Mode) -> f64 {
        model().single_thread_ns_per_day(machine, mode, &WorkloadShape::silicon(32_000))
    }

    #[test]
    fn optimized_is_always_faster_than_reference() {
        for m in Machine::table1() {
            for mode in [Mode::OptD, Mode::OptS, Mode::OptM] {
                assert!(
                    st(&m, mode) > st(&m, Mode::Ref),
                    "{} {:?} not faster than Ref",
                    m.name,
                    mode
                );
            }
        }
    }

    #[test]
    fn single_thread_speedups_match_the_papers_shape() {
        // Sec. VI-A: WM Opt-D ≈ 1.9×, WM Opt-S ≈ 3.5×, SB Opt-D ≈ 3×,
        // HW Opt-S ≈ 4.8×, ARM Opt-S ≈ 6.4× over the (slow scalar) Ref.
        let wm = Machine::westmere();
        let sb = Machine::sandy_bridge();
        let hw = Machine::haswell();
        let arm = Machine::arm();

        let ratio = |m: &Machine, mode: Mode| st(m, mode) / st(m, Mode::Ref);

        let wm_d = ratio(&wm, Mode::OptD);
        assert!((1.5..2.5).contains(&wm_d), "WM Opt-D speedup {wm_d}");
        let wm_s = ratio(&wm, Mode::OptS);
        assert!((2.8..4.5).contains(&wm_s), "WM Opt-S speedup {wm_s}");
        let sb_d = ratio(&sb, Mode::OptD);
        assert!((2.5..4.5).contains(&sb_d), "SB Opt-D speedup {sb_d}");
        let hw_s = ratio(&hw, Mode::OptS);
        assert!((4.0..6.5).contains(&hw_s), "HW Opt-S speedup {hw_s}");
        let arm_s = ratio(&arm, Mode::OptS);
        assert!((3.0..8.0).contains(&arm_s), "ARM Opt-S speedup {arm_s}");
        // AVX's missing integer vectors hold Opt-S back on SB relative to HW.
        assert!(ratio(&sb, Mode::OptS) < hw_s);
    }

    #[test]
    fn node_speedups_fall_in_the_papers_range() {
        // Fig. 5: Opt-M vs Ref between ≈2.7× and ≈5× once communication is
        // included.
        let workload = WorkloadShape::silicon(512_000);
        for m in [
            Machine::westmere(),
            Machine::sandy_bridge(),
            Machine::haswell(),
            Machine::haswell2(),
            Machine::broadwell(),
        ] {
            let speedup = model().node_ns_per_day(&m, Mode::OptM, &workload)
                / model().node_ns_per_day(&m, Mode::Ref, &workload);
            assert!(
                (2.0..5.5).contains(&speedup),
                "{}: node speedup {speedup}",
                m.name
            );
            // Node speedup is below the pure kernel speedup (communication).
            assert!(speedup < model().kernel_speedup(m.isa, Mode::OptM) + 1e-9);
        }
    }

    #[test]
    fn phi_speedups_and_knl_vs_knc() {
        // Fig. 7: roughly 5× on both Phi generations, and KNL ≈ 3× KNC in
        // absolute terms.
        let workload = WorkloadShape::silicon(512_000);
        let knc = Machine::knc();
        let knl = Machine::knl();
        let m = model();
        let knc_speedup = m.node_ns_per_day(&knc, Mode::OptM, &workload)
            / m.node_ns_per_day(&knc, Mode::Ref, &workload);
        let knl_speedup = m.node_ns_per_day(&knl, Mode::OptM, &workload)
            / m.node_ns_per_day(&knl, Mode::Ref, &workload);
        assert!(
            (3.5..6.5).contains(&knc_speedup),
            "KNC speedup {knc_speedup}"
        );
        assert!(
            (3.5..6.5).contains(&knl_speedup),
            "KNL speedup {knl_speedup}"
        );
        let generation_gain = m.node_ns_per_day(&knl, Mode::OptM, &workload)
            / m.node_ns_per_day(&knc, Mode::OptM, &workload);
        assert!(
            (2.0..4.5).contains(&generation_gain),
            "KNL/KNC ratio {generation_gain}"
        );
    }

    #[test]
    fn gpu_optimization_gains_roughly_three_x() {
        let workload = WorkloadShape::silicon(256_000);
        let m = model();
        for node in Machine::table2() {
            let opt = m.gpu_ns_per_day(&node, true, false, &workload);
            let reference = m.gpu_ns_per_day(&node, false, false, &workload);
            let speedup = opt / reference;
            assert!(
                (2.0..6.0).contains(&speedup),
                "{}: GPU speedup {speedup}",
                node.name
            );
            // Single precision projects faster still (the ≈5 ns/s the paper
            // expects from a hypothetical Opt-KK-S).
            assert!(m.gpu_ns_per_day(&node, true, true, &workload) > opt);
        }
    }

    #[test]
    fn strong_scaling_shape_matches_fig9() {
        let m = model();
        let node = Machine::iv_2knc();
        let workload = WorkloadShape::silicon(2_000_000);
        let mut prev = 0.0;
        for n in [1usize, 2, 4, 8] {
            let with_acc = m.cluster_ns_per_day(&node, Mode::OptD, true, n, &workload);
            let cpu_only_opt = m.cluster_ns_per_day(&node, Mode::OptD, false, n, &workload);
            let cpu_only_ref = m.cluster_ns_per_day(&node, Mode::Ref, false, n, &workload);
            // More nodes → more throughput (strong scaling holds to 8 nodes).
            assert!(with_acc > prev);
            prev = with_acc;
            // Ordering of the three curves as in Fig. 9.
            assert!(with_acc > cpu_only_opt && cpu_only_opt > cpu_only_ref);
        }
        // At 8 nodes the paper reports ≈2.5× for Opt-D (CPU only) and ≈6.5×
        // with the accelerators, relative to Ref (CPU only).
        let ref8 = m.cluster_ns_per_day(&node, Mode::Ref, false, 8, &workload);
        let opt8 = m.cluster_ns_per_day(&node, Mode::OptD, false, 8, &workload);
        let acc8 = m.cluster_ns_per_day(&node, Mode::OptD, true, 8, &workload);
        assert!(
            (1.8..3.5).contains(&(opt8 / ref8)),
            "CPU-only speedup {}",
            opt8 / ref8
        );
        assert!(
            (3.5..9.0).contains(&(acc8 / ref8)),
            "accelerated speedup {}",
            acc8 / ref8
        );
    }

    #[test]
    fn project_single_thread_covers_all_combinations() {
        let m = model();
        let rows = m.project_single_thread(
            &Machine::table1(),
            &Mode::ALL,
            &WorkloadShape::silicon(32_000),
        );
        assert_eq!(rows.len(), 6 * 4);
        assert!(rows
            .iter()
            .all(|r| r.ns_per_day.is_finite() && r.ns_per_day > 0.0));
    }

    #[test]
    fn ns_per_day_helper() {
        assert!((ns_per_day(0.001, 1.0) - 0.0864).abs() < 1e-12);
        assert_eq!(ns_per_day(0.001, 0.0), f64::INFINITY);
    }

    #[test]
    fn chosen_lanes_follow_the_papers_footnotes() {
        let m = model();
        // SSE4.2 double precision falls back to scalar (footnote 4).
        assert_eq!(m.chosen_lanes(Isa::Sse42, Mode::OptD), 1);
        // NEON has no double-precision vectors (footnote 3).
        assert_eq!(m.chosen_lanes(Isa::Neon, Mode::OptD), 1);
        assert_eq!(m.chosen_lanes(Isa::Avx, Mode::OptD), 4);
        assert_eq!(m.chosen_lanes(Isa::Avx512, Mode::OptM), 16);
        assert_eq!(m.chosen_lanes(Isa::Avx2, Mode::Ref), 1);
    }
}
