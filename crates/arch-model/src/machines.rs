//! The hardware of Tables I, II and III of the paper.

use serde::{Deserialize, Serialize};

/// Instruction-set classes, mirrored from `vektor::IsaClass` (kept local so
/// this crate does not need the vector library just to describe hardware).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Isa {
    /// ARM NEON (no double-precision vectors on the Cortex-A15).
    Neon,
    /// SSE4.2.
    Sse42,
    /// AVX.
    Avx,
    /// AVX2.
    Avx2,
    /// IMCI (Knights Corner).
    Imci,
    /// AVX-512 (Knights Landing).
    Avx512,
    /// A CUDA-capable GPU (warp of 32).
    Cuda,
}

impl Isa {
    /// f64 lanes per vector register / warp.
    pub fn lanes_double(self) -> usize {
        match self {
            Isa::Neon => 1, // no double-precision NEON on the Cortex-A15
            Isa::Sse42 => 2,
            Isa::Avx | Isa::Avx2 => 4,
            Isa::Imci | Isa::Avx512 => 8,
            Isa::Cuda => 32,
        }
    }

    /// f32 lanes per vector register / warp.
    pub fn lanes_single(self) -> usize {
        match self {
            Isa::Neon => 4,
            Isa::Sse42 => 4,
            Isa::Avx | Isa::Avx2 => 8,
            Isa::Imci | Isa::Avx512 => 16,
            Isa::Cuda => 32,
        }
    }

    /// Does the ISA provide the integer vector instructions that scheme (1b)
    /// needs for its index manipulation? (AVX notably does not — the reason
    /// the paper's Opt-S/M "perform below expectations" on Sandy Bridge.)
    pub fn has_int_vectors(self) -> bool {
        !matches!(self, Isa::Avx)
    }

    /// Does the ISA provide a usable hardware gather?
    pub fn has_gather(self) -> bool {
        matches!(self, Isa::Avx2 | Isa::Imci | Isa::Avx512 | Isa::Cuda)
    }

    /// Short display name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Isa::Neon => "NEON",
            Isa::Sse42 => "SSE4.2",
            Isa::Avx => "AVX",
            Isa::Avx2 => "AVX2",
            Isa::Imci => "IMCI",
            Isa::Avx512 => "AVX-512",
            Isa::Cuda => "CUDA",
        }
    }
}

/// What kind of device a [`Machine`] entry describes.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MachineKind {
    /// A CPU-only machine (Table I).
    Cpu,
    /// A host with one or more discrete accelerators (Tables II and III).
    Accelerated,
    /// A self-hosted accelerator (KNL).
    SelfHosted,
}

/// An accelerator attached to a host (Tesla or Xeon Phi).
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Accelerator {
    /// Device name.
    pub name: &'static str,
    /// Device ISA class.
    pub isa: Isa,
    /// Cores (Phi) or SMs (GPU).
    pub cores: usize,
    /// Clock in GHz.
    pub freq_ghz: f64,
    /// Relative per-core/SM throughput against a Xeon core at equal clock —
    /// folds in dual-issue vs in-order, occupancy limits, and (for GPUs) the
    /// much wider SM.
    pub core_efficiency: f64,
    /// How many devices of this kind the node has.
    pub count: usize,
}

/// One machine of the paper's evaluation.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Machine {
    /// Short name used in the figures ("SB", "HW", "KNL", ...).
    pub name: &'static str,
    /// Processor model string from the tables.
    pub cpu: &'static str,
    /// Total host cores (sockets × cores per socket).
    pub cores: usize,
    /// Host nominal clock in GHz.
    pub freq_ghz: f64,
    /// Host vector ISA.
    pub isa: Isa,
    /// Relative per-core scalar throughput against the Haswell baseline
    /// (captures IPC / μarch differences; ARM and the in-order Phi cores are
    /// well below 1).
    pub core_efficiency: f64,
    /// Attached accelerator, if any.
    pub accelerator: Option<Accelerator>,
    /// What table the machine belongs to.
    pub kind: MachineKind,
}

impl Machine {
    /// Table I — ARM Cortex-A15 (big.LITTLE, only the A15 is used).
    pub fn arm() -> Self {
        Machine {
            name: "ARM",
            cpu: "ARM Cortex-A15",
            cores: 4,
            freq_ghz: 1.9,
            isa: Isa::Neon,
            core_efficiency: 0.25,
            accelerator: None,
            kind: MachineKind::Cpu,
        }
    }

    /// Table I — Westmere, 2 × Xeon X5675.
    pub fn westmere() -> Self {
        Machine {
            name: "WM",
            cpu: "Intel Xeon X5675",
            cores: 12,
            freq_ghz: 3.06,
            isa: Isa::Sse42,
            core_efficiency: 0.75,
            accelerator: None,
            kind: MachineKind::Cpu,
        }
    }

    /// Table I — Sandy Bridge, 2 × Xeon E5-2450.
    pub fn sandy_bridge() -> Self {
        Machine {
            name: "SB",
            cpu: "Intel Xeon E5-2450",
            cores: 16,
            freq_ghz: 2.1,
            isa: Isa::Avx,
            core_efficiency: 0.85,
            accelerator: None,
            kind: MachineKind::Cpu,
        }
    }

    /// Table I — Haswell, 2 × Xeon E5-2680v3.
    pub fn haswell() -> Self {
        Machine {
            name: "HW",
            cpu: "Intel Xeon E5-2680v3",
            cores: 24,
            freq_ghz: 2.5,
            isa: Isa::Avx2,
            core_efficiency: 1.0,
            accelerator: None,
            kind: MachineKind::Cpu,
        }
    }

    /// Table I — Haswell, 2 × Xeon E5-2697v3.
    pub fn haswell2() -> Self {
        Machine {
            name: "HW2",
            cpu: "Intel Xeon E5-2697v3",
            cores: 28,
            freq_ghz: 2.6,
            isa: Isa::Avx2,
            core_efficiency: 1.0,
            accelerator: None,
            kind: MachineKind::Cpu,
        }
    }

    /// Table I — Broadwell, 2 × Xeon E5-2697v4.
    pub fn broadwell() -> Self {
        Machine {
            name: "BW",
            cpu: "Intel Xeon E5-2697v4",
            cores: 36,
            freq_ghz: 2.3,
            isa: Isa::Avx2,
            core_efficiency: 1.05,
            accelerator: None,
            kind: MachineKind::Cpu,
        }
    }

    /// Table II — Tesla K20X node.
    pub fn k20x() -> Self {
        Machine {
            name: "K20X",
            cpu: "Intel Xeon E5-2650",
            cores: 16,
            freq_ghz: 2.0,
            isa: Isa::Avx,
            core_efficiency: 0.85,
            accelerator: Some(Accelerator {
                name: "Nvidia Tesla K20x",
                isa: Isa::Cuda,
                cores: 14,
                freq_ghz: 0.732,
                core_efficiency: 2.0,
                count: 1,
            }),
            kind: MachineKind::Accelerated,
        }
    }

    /// Table II — Tesla K40 node.
    pub fn k40() -> Self {
        Machine {
            name: "K40",
            cpu: "Intel Xeon E5-2650",
            cores: 16,
            freq_ghz: 2.0,
            isa: Isa::Avx,
            core_efficiency: 0.85,
            accelerator: Some(Accelerator {
                name: "Nvidia Tesla K40",
                isa: Isa::Cuda,
                cores: 15,
                freq_ghz: 0.745,
                core_efficiency: 2.0,
                count: 1,
            }),
            kind: MachineKind::Accelerated,
        }
    }

    /// Table III — Knights Corner 5110P (native execution, no host).
    pub fn knc() -> Self {
        Machine {
            name: "KNC",
            cpu: "Intel Xeon Phi 5110P",
            cores: 60,
            freq_ghz: 1.053,
            isa: Isa::Imci,
            core_efficiency: 0.45,
            accelerator: None,
            kind: MachineKind::SelfHosted,
        }
    }

    /// Table III — Knights Landing 7250 (self-hosted).
    pub fn knl() -> Self {
        Machine {
            name: "KNL",
            cpu: "Intel Xeon Phi 7250",
            cores: 68,
            freq_ghz: 1.4,
            isa: Isa::Avx512,
            core_efficiency: 0.8,
            accelerator: None,
            kind: MachineKind::SelfHosted,
        }
    }

    /// Table III — SB host + one KNC.
    pub fn sb_knc() -> Self {
        let mut m = Machine::sandy_bridge();
        m.name = "SB+KNC";
        m.accelerator = Some(Accelerator {
            name: "Intel Xeon Phi 5110P",
            isa: Isa::Imci,
            cores: 60,
            freq_ghz: 1.053,
            core_efficiency: 0.45,
            count: 1,
        });
        m.kind = MachineKind::Accelerated;
        m
    }

    /// Table III — Ivy Bridge host + two KNC (the SuperMIC node of Fig. 9).
    pub fn iv_2knc() -> Self {
        Machine {
            name: "IV+2KNC",
            cpu: "Intel Xeon E5-2650v2",
            cores: 16,
            freq_ghz: 2.6,
            isa: Isa::Avx,
            core_efficiency: 0.9,
            accelerator: Some(Accelerator {
                name: "Intel Xeon Phi 5110P",
                isa: Isa::Imci,
                cores: 60,
                freq_ghz: 1.053,
                core_efficiency: 0.45,
                count: 2,
            }),
            kind: MachineKind::Accelerated,
        }
    }

    /// Table III — HW host + one KNC.
    pub fn hw_knc() -> Self {
        let mut m = Machine::haswell();
        m.name = "HW+KNC";
        m.accelerator = Some(Accelerator {
            name: "Intel Xeon Phi 5110P",
            isa: Isa::Imci,
            cores: 60,
            freq_ghz: 1.053,
            core_efficiency: 0.45,
            count: 1,
        });
        m.kind = MachineKind::Accelerated;
        m
    }

    /// All CPU machines of Table I.
    pub fn table1() -> Vec<Machine> {
        vec![
            Machine::arm(),
            Machine::westmere(),
            Machine::sandy_bridge(),
            Machine::haswell(),
            Machine::haswell2(),
            Machine::broadwell(),
        ]
    }

    /// The GPU nodes of Table II.
    pub fn table2() -> Vec<Machine> {
        vec![Machine::k20x(), Machine::k40()]
    }

    /// The Xeon Phi configurations of Table III.
    pub fn table3() -> Vec<Machine> {
        vec![
            Machine::sb_knc(),
            Machine::iv_2knc(),
            Machine::hw_knc(),
            Machine::knl(),
        ]
    }

    /// The machine named `name`, if it appears in any table (plus the
    /// native-mode KNC that Fig. 7 uses).
    pub fn by_name(name: &str) -> Option<Machine> {
        let mut all = Machine::table1();
        all.extend(Machine::table2());
        all.extend(Machine::table3());
        all.push(Machine::knc());
        all.into_iter().find(|m| m.name.eq_ignore_ascii_case(name))
    }

    /// Aggregate host throughput proxy: cores × GHz × efficiency.
    pub fn host_scalar_throughput(&self) -> f64 {
        self.cores as f64 * self.freq_ghz * self.core_efficiency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_have_the_papers_row_counts() {
        assert_eq!(Machine::table1().len(), 6);
        assert_eq!(Machine::table2().len(), 2);
        assert_eq!(Machine::table3().len(), 4);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(Machine::by_name("HW").unwrap().isa, Isa::Avx2);
        assert_eq!(Machine::by_name("knl").unwrap().isa, Isa::Avx512);
        assert!(Machine::by_name("KNC").is_some());
        assert!(Machine::by_name("nonexistent").is_none());
    }

    #[test]
    fn isa_feature_matrix() {
        assert!(!Isa::Avx.has_int_vectors());
        assert!(Isa::Avx2.has_int_vectors());
        assert!(!Isa::Sse42.has_gather());
        assert!(Isa::Avx512.has_gather());
        assert_eq!(Isa::Avx512.lanes_double(), 8);
        assert_eq!(Isa::Avx512.lanes_single(), 16);
        assert_eq!(Isa::Neon.lanes_double(), 1);
        assert_eq!(Isa::Cuda.lanes_single(), 32);
    }

    #[test]
    fn newer_cpus_have_more_aggregate_throughput() {
        let t = Machine::table1();
        let wm = t.iter().find(|m| m.name == "WM").unwrap();
        let hw = t.iter().find(|m| m.name == "HW").unwrap();
        let bw = t.iter().find(|m| m.name == "BW").unwrap();
        assert!(hw.host_scalar_throughput() > wm.host_scalar_throughput());
        assert!(bw.host_scalar_throughput() > hw.host_scalar_throughput());
    }

    #[test]
    fn accelerated_nodes_carry_their_devices() {
        assert_eq!(Machine::iv_2knc().accelerator.unwrap().count, 2);
        assert_eq!(Machine::k40().accelerator.unwrap().isa, Isa::Cuda);
        assert!(Machine::knl().accelerator.is_none());
        assert_eq!(Machine::knl().kind, MachineKind::SelfHosted);
    }
}
