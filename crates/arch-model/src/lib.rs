//! # arch-model — architecture descriptors and the analytic cost model
//!
//! The paper evaluates the same kernels on eleven machines (Tables I–III):
//! an ARM board, five x86 server generations, two Kepler GPUs and two Xeon
//! Phi generations, plus multi-node clusters of Phi-augmented nodes. That
//! hardware is not available here, so the cross-architecture figures are
//! *projected*: the algorithmic quantities are measured from the real kernels
//! in the `tersoff` crate (lane occupancy, pair counts, precision mode) and
//! combined with a per-machine throughput model whose inputs are public
//! hardware characteristics (core count, frequency, vector width, ISA
//! features). DESIGN.md documents this substitution; EXPERIMENTS.md reports
//! paper-vs-projected values side by side.

pub mod cost;
pub mod machines;

pub use cost::{ClusterConfig, CostModel, Projection, WorkloadShape};
pub use machines::{Accelerator, Machine, MachineKind};

/// Commonly used items.
pub mod prelude {
    pub use crate::cost::{ClusterConfig, CostModel, Projection, WorkloadShape};
    pub use crate::machines::{Accelerator, Machine, MachineKind};
}
